//! Network topology and route computation — the routing module of the
//! SDN controller (Floodlight stand-in).

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

use openmb_types::sdn::{FlowRule, SdnAction, SdnMessage};
use openmb_types::{HeaderFieldList, NodeId};

/// What kind of element a topology node is; switches forward by rule,
/// everything else terminates or originates traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementKind {
    Host,
    Switch,
    Middlebox,
}

/// The SDN controller's view of the network graph.
#[derive(Debug, Default, Clone)]
pub struct Topology {
    kinds: BTreeMap<NodeId, ElementKind>,
    adj: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// Link costs (defaults to 1 per hop).
    costs: HashMap<(NodeId, NodeId), u64>,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a node.
    pub fn add_element(&mut self, id: NodeId, kind: ElementKind) {
        self.kinds.insert(id, kind);
        self.adj.entry(id).or_default();
    }

    /// Register a bidirectional link with unit cost.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) {
        self.add_link_with_cost(a, b, 1);
    }

    /// Register a bidirectional link with an explicit cost.
    pub fn add_link_with_cost(&mut self, a: NodeId, b: NodeId, cost: u64) {
        assert!(self.kinds.contains_key(&a), "unknown element {a}");
        assert!(self.kinds.contains_key(&b), "unknown element {b}");
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
        self.costs.insert((a, b), cost);
        self.costs.insert((b, a), cost);
    }

    /// The element kind of a node, if registered.
    pub fn kind(&self, id: NodeId) -> Option<ElementKind> {
        self.kinds.get(&id).copied()
    }

    /// Dijkstra shortest path from `src` to `dst`. Interior nodes are
    /// restricted to switches (traffic cannot be routed *through* hosts
    /// or middleboxes unless explicitly waypointed). Returns the full
    /// node sequence including endpoints, or `None` if unreachable.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut dist: HashMap<NodeId, u64> = HashMap::new();
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(src, 0);
        heap.push(std::cmp::Reverse((0u64, src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if u == dst {
                break;
            }
            if d > dist.get(&u).copied().unwrap_or(u64::MAX) {
                continue;
            }
            // Only switches may relay; src may also emit.
            if u != src && self.kinds.get(&u) != Some(&ElementKind::Switch) {
                continue;
            }
            for &v in self.adj.get(&u).into_iter().flatten() {
                let nd = d + self.costs.get(&(u, v)).copied().unwrap_or(1);
                if nd < dist.get(&v).copied().unwrap_or(u64::MAX) {
                    dist.insert(v, nd);
                    prev.insert(v, u);
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        if !prev.contains_key(&dst) {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = prev[&cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Total link cost of the shortest path from `src` to `dst`, under
    /// the same switch-relay restriction as
    /// [`Topology::shortest_path`]. `None` when unreachable. Placement
    /// ([`openmb-core`'s `placement` module]) scores candidate
    /// middleboxes by this distance.
    pub fn path_cost(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        let path = self.shortest_path(src, dst)?;
        Some(path.windows(2).map(|w| self.costs.get(&(w[0], w[1])).copied().unwrap_or(1)).sum())
    }

    /// Shortest path from `src` to `dst` passing through each waypoint
    /// in order (how traffic is steered through middleboxes). Consecutive
    /// segments are concatenated with duplicate junction nodes removed.
    pub fn waypoint_path(
        &self,
        src: NodeId,
        waypoints: &[NodeId],
        dst: NodeId,
    ) -> Option<Vec<NodeId>> {
        let mut stops = vec![src];
        stops.extend_from_slice(waypoints);
        stops.push(dst);
        let mut full: Vec<NodeId> = Vec::new();
        for pair in stops.windows(2) {
            let seg = self.shortest_path(pair[0], pair[1])?;
            if full.is_empty() {
                full.extend(seg);
            } else {
                full.extend(seg.into_iter().skip(1));
            }
        }
        Some(full)
    }

    /// Compile a path into per-switch `FlowMod`s forwarding `pattern`
    /// along it. Non-switch path elements (hosts, middleboxes) receive no
    /// rules — the element after them in the path is where their output
    /// goes, which the simulator models by MBs sending processed packets
    /// to their configured next hop.
    pub fn path_flow_mods(
        &self,
        pattern: HeaderFieldList,
        priority: u16,
        path: &[NodeId],
    ) -> Vec<(NodeId, SdnMessage)> {
        let mut mods = Vec::new();
        for i in 1..path.len() {
            let here = path[i - 1];
            if self.kinds.get(&here) != Some(&ElementKind::Switch) {
                continue;
            }
            let next = path[i];
            // The hop the packet arrived from: the element before this
            // switch on the path (for the first element there is none,
            // but a switch is never first on an end-to-end path).
            let in_port = if i >= 2 { Some(path[i - 2]) } else { None };
            let mut rule = FlowRule::new(pattern, priority, SdnAction::Forward(next));
            rule.in_port = in_port;
            mods.push((here, SdnMessage::FlowMod(rule)));
        }
        mods
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_topology() -> (Topology, Vec<NodeId>) {
        // h0 - s1 - s2 - s3 - h4, with mb5 hanging off s2
        let mut t = Topology::new();
        let ids: Vec<NodeId> = (0..6).map(NodeId).collect();
        t.add_element(ids[0], ElementKind::Host);
        t.add_element(ids[1], ElementKind::Switch);
        t.add_element(ids[2], ElementKind::Switch);
        t.add_element(ids[3], ElementKind::Switch);
        t.add_element(ids[4], ElementKind::Host);
        t.add_element(ids[5], ElementKind::Middlebox);
        t.add_link(ids[0], ids[1]);
        t.add_link(ids[1], ids[2]);
        t.add_link(ids[2], ids[3]);
        t.add_link(ids[3], ids[4]);
        t.add_link(ids[2], ids[5]);
        (t, ids)
    }

    #[test]
    fn shortest_path_simple() {
        let (t, ids) = line_topology();
        let p = t.shortest_path(ids[0], ids[4]).unwrap();
        assert_eq!(p, vec![ids[0], ids[1], ids[2], ids[3], ids[4]]);
    }

    #[test]
    fn hosts_do_not_relay() {
        let mut t = Topology::new();
        let a = NodeId(0);
        let h = NodeId(1);
        let b = NodeId(2);
        t.add_element(a, ElementKind::Host);
        t.add_element(h, ElementKind::Host);
        t.add_element(b, ElementKind::Host);
        t.add_link(a, h);
        t.add_link(h, b);
        assert!(t.shortest_path(a, b).is_none(), "host must not relay");
    }

    #[test]
    fn waypoint_path_visits_middlebox() {
        let (t, ids) = line_topology();
        let p = t.waypoint_path(ids[0], &[ids[5]], ids[4]).unwrap();
        assert_eq!(p, vec![ids[0], ids[1], ids[2], ids[5], ids[2], ids[3], ids[4]]);
    }

    #[test]
    fn flow_mods_only_on_switches_with_in_ports() {
        let (t, ids) = line_topology();
        let p = t.waypoint_path(ids[0], &[ids[5]], ids[4]).unwrap();
        let mods = t.path_flow_mods(HeaderFieldList::any(), 5, &p);
        // Switches on the path: s1 (->s2), s2 from s1 (->mb5),
        // s2 from mb5 (->s3), s3 (->h4): four distinct rules.
        let rules: Vec<(NodeId, Option<NodeId>, NodeId)> = mods
            .iter()
            .map(|(s, m)| match m {
                SdnMessage::FlowMod(r) => match r.action {
                    SdnAction::Forward(n) => (*s, r.in_port, n),
                    SdnAction::Drop => panic!("unexpected drop"),
                },
                _ => panic!("unexpected message"),
            })
            .collect();
        assert_eq!(
            rules,
            vec![
                (ids[1], Some(ids[0]), ids[2]),
                (ids[2], Some(ids[1]), ids[5]),
                (ids[2], Some(ids[5]), ids[3]),
                (ids[3], Some(ids[2]), ids[4]),
            ]
        );
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        t.add_element(NodeId(0), ElementKind::Host);
        t.add_element(NodeId(1), ElementKind::Host);
        assert!(t.shortest_path(NodeId(0), NodeId(1)).is_none());
    }

    #[test]
    fn costs_change_paths() {
        // Triangle: a - s1 - b and a - s2 - b with s2 cheaper total.
        let mut t = Topology::new();
        let a = NodeId(0);
        let s1 = NodeId(1);
        let s2 = NodeId(2);
        let b = NodeId(3);
        t.add_element(a, ElementKind::Host);
        t.add_element(s1, ElementKind::Switch);
        t.add_element(s2, ElementKind::Switch);
        t.add_element(b, ElementKind::Host);
        t.add_link_with_cost(a, s1, 10);
        t.add_link_with_cost(s1, b, 10);
        t.add_link_with_cost(a, s2, 1);
        t.add_link_with_cost(s2, b, 1);
        assert_eq!(t.shortest_path(a, b).unwrap(), vec![a, s2, b]);
    }
}

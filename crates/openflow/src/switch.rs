//! The simulated OpenFlow switch.

use openmb_simnet::{Ctx, Frame, Node, SimDuration, TraceKind};
use openmb_types::sdn::{SdnAction, SdnMessage};
use openmb_types::NodeId;

use crate::flowtable::FlowTable;

/// An OpenFlow-style switch [`Node`].
///
/// Data packets are matched against the [`FlowTable`]; matches forward or
/// drop, misses are either sent to the attached controller as `PacketIn`
/// (when a controller link is configured) or dropped. Control messages
/// from the controller mutate the table; a `BarrierRequest` is answered
/// after all prior mods, letting control applications sequence "routing
/// update has taken effect" (§5: a move must complete *before* the
/// routing change).
pub struct Switch {
    /// Controller attachment point, if any.
    controller: Option<NodeId>,
    /// Per-packet pipeline latency (lookup + crossbar).
    forwarding_delay: SimDuration,
    table: FlowTable,
    /// Packets dropped due to table miss (no controller attached).
    pub dropped: u64,
    /// Packets that finished table lookup and are waiting out the
    /// pipeline delay before egress.
    pending_out: Vec<(NodeId, openmb_types::Packet)>,
    label: String,
}

impl Switch {
    /// A switch with a typical hardware forwarding delay (5 µs).
    pub fn new(label: impl Into<String>) -> Self {
        Switch {
            controller: None,
            forwarding_delay: SimDuration::from_micros(5),
            table: FlowTable::new(),
            dropped: 0,
            pending_out: Vec::new(),
            label: label.into(),
        }
    }

    /// Attach an SDN controller: misses become `PacketIn`s to it.
    pub fn with_controller(mut self, controller: NodeId) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Override the forwarding delay.
    pub fn with_forwarding_delay(mut self, d: SimDuration) -> Self {
        self.forwarding_delay = d;
        self
    }

    /// Inspect the flow table (testing / experiments).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Pre-install a rule before the simulation starts.
    pub fn preinstall(&mut self, rule: openmb_types::sdn::FlowRule) {
        self.table.install(rule);
    }

    fn forward(&mut self, ctx: &mut Ctx<'_>, from: NodeId, pkt: openmb_types::Packet) {
        match self.table.lookup(&pkt.key, from) {
            Some(SdnAction::Forward(next)) => {
                // The pipeline delay applies before the packet leaves;
                // modeled by a self-delivery then send would double-count
                // table lookups, so we instead fold it into the send via
                // a delayed self-frame only when the delay is non-zero.
                if self.forwarding_delay == SimDuration::ZERO {
                    ctx.send(next, Frame::Data(pkt));
                } else {
                    // Encode "pipeline done, forward to `next`" as a
                    // deferred send: we use send_to_self with a marker.
                    // Simpler and equivalent under FIFO links: add the
                    // delay by scheduling the send from now+delay.
                    let delay = self.forwarding_delay;
                    self.pending_out.push((next, pkt));
                    ctx.set_timer(delay, TIMER_FLUSH);
                }
            }
            Some(SdnAction::Drop) => {
                ctx.trace(TraceKind::PacketDropped { pkt_id: pkt.id });
                ctx.metrics.incr("switch.dropped_by_rule", 1);
            }
            None => match self.controller {
                Some(c) => ctx.send(c, Frame::Sdn(SdnMessage::PacketIn { packet: pkt })),
                None => {
                    self.dropped += 1;
                    ctx.trace(TraceKind::PacketDropped { pkt_id: pkt.id });
                    ctx.metrics.incr("switch.miss_dropped", 1);
                }
            },
        }
    }
}

const TIMER_FLUSH: u64 = 1;

/// Deferred output queue entry (see `forward`).
impl Switch {
    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        // Timers fire in order, one per queued packet: emit the oldest.
        if !self.pending_out.is_empty() {
            let (next, pkt) = self.pending_out.remove(0);
            ctx.send(next, Frame::Data(pkt));
        }
    }
}

impl Node for Switch {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, from: NodeId, frame: Frame) {
        match frame {
            Frame::Data(pkt) => self.forward(ctx, from, pkt),
            Frame::Sdn(msg) => match msg {
                SdnMessage::FlowMod(rule) => {
                    self.table.install(rule);
                    ctx.metrics.incr("switch.flow_mods", 1);
                }
                SdnMessage::FlowDel { pattern } => {
                    self.table.remove(&pattern);
                }
                SdnMessage::BarrierRequest { token } => {
                    ctx.send(from, Frame::Sdn(SdnMessage::BarrierReply { token }));
                }
                SdnMessage::PacketOut { packet, action } => match action {
                    SdnAction::Forward(next) => ctx.send(next, Frame::Data(packet)),
                    SdnAction::Drop => {}
                },
                SdnMessage::BarrierReply { .. } | SdnMessage::PacketIn { .. } => {
                    // Not meaningful at a switch; ignore.
                }
            },
            Frame::Control(_) => {
                // OpenMB protocol messages never terminate at a switch;
                // topologies connect controller and MBs directly.
                panic!("OpenMB control frame delivered to switch {}", self.label);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_FLUSH {
            self.flush(ctx);
        }
    }

    fn name(&self) -> String {
        format!("switch:{}", self.label)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

//! # openmb-openflow
//!
//! The SDN substrate OpenMB coordinates with (§3): an OpenFlow-style
//! switch ([`Switch`]) with a prioritized wildcard [`FlowTable`]
//! (including ingress-port matching, required to steer flows *through*
//! middleboxes), and the SDN controller's topology/routing module
//! ([`Topology`]) that computes waypointed shortest paths and compiles
//! them into per-switch flow mods.
//!
//! The paper's prototype used Floodlight and an HP ProCurve 5400; this
//! crate reproduces exactly the slice of that stack the experiments
//! exercise: match-based forwarding, controller-issued rule updates with
//! propagation delay, barriers, and packet-in on table miss.

pub mod flowtable;
pub mod switch;
pub mod topology;

pub use flowtable::FlowTable;
pub use switch::Switch;
pub use topology::{ElementKind, Topology};

//! An OpenFlow-style flow table: prioritized wildcard rules, fronted by
//! an exact-match cache so steady-state forwarding is one hash probe.

use std::collections::HashMap;

use openmb_types::sdn::{FlowRule, SdnAction};
use openmb_types::{FlowKey, HeaderFieldList, NodeId};

/// Exact-match cache entries are bounded; on overflow the cache is
/// cleared wholesale (the table rebuilds it on subsequent lookups).
const CACHE_CAP: usize = 65_536;

/// A switch's flow table. Lookup returns the matching rule with the
/// highest priority; ties are broken by specificity (fewer wildcarded
/// bits wins) and then by most-recent installation — the semantics OpenMB
/// relies on when a control application overrides a subnet-wide route
/// with flow-specific ones during a move.
///
/// Wildcard rules are scanned only on the first packet of a `(flow,
/// in-port)` pair; the resolved action (including "no match") is then
/// served from an exact-match cache until a rule change touches that
/// flow.
#[derive(Debug, Default, Clone)]
pub struct FlowTable {
    /// Rules with install sequence numbers.
    entries: Vec<(u64, FlowRule)>,
    next_seq: u64,
    /// Exact-match fast path: `(flow key, in-port) → resolved action`.
    /// `None` caches a miss (important: miss-heavy traffic would
    /// otherwise rescan every wildcard rule per packet). Invalidated
    /// precisely on install/modify/remove — only entries the changed
    /// rule could match are evicted.
    cache: HashMap<(FlowKey, NodeId), Option<SdnAction>>,
    /// Lookups served from the exact-match cache (perf accounting).
    pub cache_hits: u64,
    /// Lookups that matched nothing.
    pub misses: u64,
    /// Lookups that matched a rule.
    pub hits: u64,
}

impl FlowTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a rule. A rule with an identical pattern, in-port, and
    /// priority is overwritten (OpenFlow `OFPFC_MODIFY` semantics for an
    /// exact duplicate).
    pub fn install(&mut self, rule: FlowRule) {
        // Any cached flow the new rule could match may now resolve
        // differently (including cached misses that would now hit).
        self.invalidate(&rule.pattern, rule.in_port);
        if let Some((_, existing)) = self.entries.iter_mut().find(|(_, e)| {
            e.pattern == rule.pattern && e.priority == rule.priority && e.in_port == rule.in_port
        }) {
            existing.action = rule.action;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((seq, rule));
    }

    /// Remove all rules whose pattern equals `pattern` exactly.
    /// Returns how many were removed.
    pub fn remove(&mut self, pattern: &HeaderFieldList) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(_, e)| e.pattern != *pattern);
        let removed = before - self.entries.len();
        if removed > 0 {
            // Removed rules may have had in-port constraints; `None`
            // here evicts the pattern's flows on every port, a superset
            // of what the removed rules served.
            self.invalidate(pattern, None);
        }
        removed
    }

    /// Drop every cached resolution the changed rule could have
    /// influenced: flows the pattern matches, on the rule's in-port (or
    /// every port when the rule has none).
    fn invalidate(&mut self, pattern: &HeaderFieldList, in_port: Option<NodeId>) {
        self.cache
            .retain(|(key, port), _| !(pattern.matches(key) && in_port.is_none_or(|p| p == *port)));
    }

    /// Look up the action for a packet's flow key arriving from
    /// `in_port`. Specificity tie-breaking counts an `in_port` match as
    /// more specific than a wildcard port.
    ///
    /// Steady state is a single hash probe; only the first packet of a
    /// `(flow, in-port)` pair (or the first after a rule change touching
    /// it) pays the full wildcard scan.
    pub fn lookup(&mut self, key: &FlowKey, in_port: NodeId) -> Option<SdnAction> {
        if let Some(&cached) = self.cache.get(&(*key, in_port)) {
            self.cache_hits += 1;
            match cached {
                Some(_) => self.hits += 1,
                None => self.misses += 1,
            }
            return cached;
        }
        let resolved = self.lookup_uncached(key, in_port);
        if self.cache.len() >= CACHE_CAP {
            self.cache.clear();
        }
        self.cache.insert((*key, in_port), resolved);
        match resolved {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        resolved
    }

    /// The full prioritized wildcard scan, bypassing (and not
    /// populating) the exact-match cache. Public so tests and benches
    /// can compare cached and cold resolution.
    pub fn lookup_uncached(&self, key: &FlowKey, in_port: NodeId) -> Option<SdnAction> {
        self.entries
            .iter()
            .filter(|(_, e)| e.pattern.matches(key) && e.in_port.is_none_or(|p| p == in_port))
            .max_by_key(|(seq, e)| {
                let score = e.pattern.wildcard_score() + u32::from(e.in_port.is_none());
                (e.priority, std::cmp::Reverse(score), *seq)
            })
            .map(|(_, e)| e.action)
    }

    /// Number of `(flow, in-port)` resolutions currently cached.
    pub fn cached_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over installed rules (install order).
    pub fn rules(&self) -> impl Iterator<Item = &FlowRule> {
        self.entries.iter().map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmb_types::IpPrefix;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn key() -> FlowKey {
        FlowKey::tcp(ip("1.1.1.5"), 1234, ip("2.2.2.2"), 80)
    }

    const PORT: NodeId = NodeId(99);

    #[test]
    fn priority_wins() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(HeaderFieldList::any(), 1, SdnAction::Forward(NodeId(1))));
        t.install(FlowRule::new(
            HeaderFieldList::from_src_subnet(IpPrefix::new(ip("1.1.1.0"), 24)),
            10,
            SdnAction::Forward(NodeId(2)),
        ));
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Forward(NodeId(2))));
    }

    #[test]
    fn specificity_breaks_priority_ties() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(
            HeaderFieldList::from_src_subnet(IpPrefix::new(ip("1.0.0.0"), 8)),
            5,
            SdnAction::Forward(NodeId(1)),
        ));
        t.install(FlowRule::new(
            HeaderFieldList::from_src_subnet(IpPrefix::new(ip("1.1.1.0"), 24)),
            5,
            SdnAction::Forward(NodeId(2)),
        ));
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Forward(NodeId(2))));
    }

    #[test]
    fn newest_breaks_full_ties() {
        let mut t = FlowTable::new();
        let pat_a = HeaderFieldList::from_src_subnet(IpPrefix::new(ip("1.1.1.0"), 24));
        let pat_b = HeaderFieldList::from_dst_subnet(IpPrefix::new(ip("2.2.2.0"), 24));
        t.install(FlowRule::new(pat_a, 5, SdnAction::Forward(NodeId(1))));
        t.install(FlowRule::new(pat_b, 5, SdnAction::Forward(NodeId(2))));
        // Same priority, same wildcard score -> later install wins.
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Forward(NodeId(2))));
    }

    #[test]
    fn identical_pattern_overwrites() {
        let mut t = FlowTable::new();
        let pat = HeaderFieldList::exact(key());
        t.install(FlowRule::new(pat, 5, SdnAction::Forward(NodeId(1))));
        t.install(FlowRule::new(pat, 5, SdnAction::Drop));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Drop));
    }

    #[test]
    fn in_port_disambiguates_mb_traversal() {
        // Pre-MB packets (from upstream port) go to the MB; post-MB
        // packets (from the MB port) continue downstream — same 5-tuple.
        let mut t = FlowTable::new();
        let upstream = NodeId(1);
        let mb = NodeId(2);
        let downstream = NodeId(3);
        t.install(
            FlowRule::new(HeaderFieldList::any(), 5, SdnAction::Forward(mb)).from_port(upstream),
        );
        t.install(
            FlowRule::new(HeaderFieldList::any(), 5, SdnAction::Forward(downstream)).from_port(mb),
        );
        assert_eq!(t.lookup(&key(), upstream), Some(SdnAction::Forward(mb)));
        assert_eq!(t.lookup(&key(), mb), Some(SdnAction::Forward(downstream)));
        assert_eq!(t.lookup(&key(), NodeId(7)), None);
    }

    #[test]
    fn port_match_is_more_specific() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(HeaderFieldList::any(), 5, SdnAction::Drop));
        t.install(
            FlowRule::new(HeaderFieldList::any(), 5, SdnAction::Forward(NodeId(1))).from_port(PORT),
        );
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Forward(NodeId(1))));
        assert_eq!(t.lookup(&key(), NodeId(7)), Some(SdnAction::Drop));
    }

    #[test]
    fn miss_counts() {
        let mut t = FlowTable::new();
        assert_eq!(t.lookup(&key(), PORT), None);
        assert_eq!(t.misses, 1);
        assert_eq!(t.hits, 0);
    }

    #[test]
    fn remove_by_pattern() {
        let mut t = FlowTable::new();
        let pat = HeaderFieldList::exact(key());
        t.install(FlowRule::new(pat, 5, SdnAction::Drop));
        assert_eq!(t.remove(&pat), 1);
        assert!(t.is_empty());
        assert_eq!(t.remove(&pat), 0);
    }

    // ---- exact-match cache ----

    #[test]
    fn cache_hit_repeats_cold_result() {
        // Same fixture as `priority_wins`: the cached answer must equal
        // the wildcard-scan answer, and the repeat must be served from
        // the cache.
        let mut t = FlowTable::new();
        t.install(FlowRule::new(HeaderFieldList::any(), 1, SdnAction::Forward(NodeId(1))));
        t.install(FlowRule::new(
            HeaderFieldList::from_src_subnet(IpPrefix::new(ip("1.1.1.0"), 24)),
            10,
            SdnAction::Forward(NodeId(2)),
        ));
        let cold = t.lookup(&key(), PORT);
        assert_eq!(cold, Some(SdnAction::Forward(NodeId(2))));
        assert_eq!(t.cache_hits, 0);
        assert_eq!(t.lookup(&key(), PORT), cold);
        assert_eq!(t.cache_hits, 1);
        assert_eq!(t.hits, 2);
    }

    #[test]
    fn cached_miss_counts_as_miss() {
        let mut t = FlowTable::new();
        assert_eq!(t.lookup(&key(), PORT), None);
        assert_eq!(t.lookup(&key(), PORT), None);
        assert_eq!(t.misses, 2);
        assert_eq!(t.cache_hits, 1);
    }

    #[test]
    fn higher_priority_install_invalidates_stale_entry() {
        // Same fixture as `specificity_breaks_priority_ties`, built
        // incrementally: a cached resolution must not survive the
        // install of an overlapping rule that wins.
        let mut t = FlowTable::new();
        t.install(FlowRule::new(
            HeaderFieldList::from_src_subnet(IpPrefix::new(ip("1.0.0.0"), 8)),
            5,
            SdnAction::Forward(NodeId(1)),
        ));
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Forward(NodeId(1))));
        t.install(FlowRule::new(
            HeaderFieldList::from_src_subnet(IpPrefix::new(ip("1.1.1.0"), 24)),
            5,
            SdnAction::Forward(NodeId(2)),
        ));
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Forward(NodeId(2))));
        // A flow the new rule does NOT match keeps its cache entry.
        let other = FlowKey::tcp(ip("9.9.9.9"), 1, ip("2.2.2.2"), 80);
        t.lookup(&other, PORT);
        let hits_before = t.cache_hits;
        t.install(FlowRule::new(
            HeaderFieldList::from_src_subnet(IpPrefix::new(ip("1.1.1.0"), 24)),
            7,
            SdnAction::Drop,
        ));
        t.lookup(&other, PORT);
        assert_eq!(t.cache_hits, hits_before + 1, "unrelated entry was evicted");
    }

    #[test]
    fn modify_and_remove_invalidate() {
        let mut t = FlowTable::new();
        let pat = HeaderFieldList::exact(key());
        t.install(FlowRule::new(pat, 5, SdnAction::Forward(NodeId(1))));
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Forward(NodeId(1))));
        // OFPFC_MODIFY (identical pattern/priority/port) rewrites the
        // action — the cached action must follow.
        t.install(FlowRule::new(pat, 5, SdnAction::Drop));
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Drop));
        // Removal must expose the now-empty table, not the stale hit.
        t.remove(&pat);
        assert_eq!(t.lookup(&key(), PORT), None);
    }

    #[test]
    fn cached_misses_heal_after_install() {
        let mut t = FlowTable::new();
        assert_eq!(t.lookup(&key(), PORT), None);
        t.install(FlowRule::new(HeaderFieldList::any(), 1, SdnAction::Drop));
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Drop));
    }

    #[test]
    fn in_port_restricted_install_spares_other_ports() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(HeaderFieldList::any(), 1, SdnAction::Drop));
        t.lookup(&key(), NodeId(7));
        let hits_before = t.cache_hits;
        // New rule pinned to PORT: the NodeId(7) cache entry survives.
        t.install(
            FlowRule::new(HeaderFieldList::any(), 9, SdnAction::Forward(NodeId(1))).from_port(PORT),
        );
        assert_eq!(t.lookup(&key(), NodeId(7)), Some(SdnAction::Drop));
        assert_eq!(t.cache_hits, hits_before + 1);
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Forward(NodeId(1))));
    }

    /// Randomized interleaving of installs, removes, and lookups: every
    /// cached lookup must agree with a fresh wildcard scan of the same
    /// table state.
    #[test]
    fn cache_agrees_with_cold_lookup_under_random_churn() {
        use proptest::test_runner::TestRng;
        let mut rng = TestRng::from_name("cache_agrees_with_cold_lookup_under_random_churn");
        let mut t = FlowTable::new();

        // Small universes force overlap between rules and traffic.
        let rand_ip = |rng: &mut TestRng| ip(&format!("10.0.{}.{}", rng.below(2), rng.below(4)));
        let rand_key =
            |rng: &mut TestRng| FlowKey::tcp(rand_ip(rng), rng.below(3) as u16, rand_ip(rng), 80);
        let rand_pattern = |rng: &mut TestRng| match rng.below(4) {
            0 => HeaderFieldList::any(),
            1 => HeaderFieldList::from_src_subnet(IpPrefix::new(rand_ip(rng), 24)),
            2 => HeaderFieldList::from_dst_subnet(IpPrefix::new(rand_ip(rng), 30)),
            _ => HeaderFieldList::exact(rand_key(rng)),
        };

        for step in 0..2000 {
            match rng.below(10) {
                0..=1 => {
                    let rule = FlowRule::new(
                        rand_pattern(&mut rng),
                        rng.below(4) as u16,
                        SdnAction::Forward(NodeId(rng.below(4) as u32)),
                    );
                    let rule = if rng.below(3) == 0 {
                        rule.from_port(NodeId(rng.below(3) as u32))
                    } else {
                        rule
                    };
                    t.install(rule);
                }
                2 => {
                    let pat = rand_pattern(&mut rng);
                    t.remove(&pat);
                }
                _ => {
                    let key = rand_key(&mut rng);
                    let port = NodeId(rng.below(3) as u32);
                    assert_eq!(
                        t.lookup(&key, port),
                        t.lookup_uncached(&key, port),
                        "step {step}: cache diverged from cold lookup"
                    );
                }
            }
        }
        assert!(t.cache_hits > 0, "churn test never exercised the cache fast path");
    }
}

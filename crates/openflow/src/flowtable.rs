//! An OpenFlow-style flow table: prioritized wildcard rules.

use openmb_types::sdn::{FlowRule, SdnAction};
use openmb_types::{FlowKey, HeaderFieldList, NodeId};

/// A switch's flow table. Lookup returns the matching rule with the
/// highest priority; ties are broken by specificity (fewer wildcarded
/// bits wins) and then by most-recent installation — the semantics OpenMB
/// relies on when a control application overrides a subnet-wide route
/// with flow-specific ones during a move.
#[derive(Debug, Default, Clone)]
pub struct FlowTable {
    /// Rules with install sequence numbers.
    entries: Vec<(u64, FlowRule)>,
    next_seq: u64,
    /// Lookups that matched nothing.
    pub misses: u64,
    /// Lookups that matched a rule.
    pub hits: u64,
}

impl FlowTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a rule. A rule with an identical pattern, in-port, and
    /// priority is overwritten (OpenFlow `OFPFC_MODIFY` semantics for an
    /// exact duplicate).
    pub fn install(&mut self, rule: FlowRule) {
        if let Some((_, existing)) = self.entries.iter_mut().find(|(_, e)| {
            e.pattern == rule.pattern && e.priority == rule.priority && e.in_port == rule.in_port
        }) {
            existing.action = rule.action;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((seq, rule));
    }

    /// Remove all rules whose pattern equals `pattern` exactly.
    /// Returns how many were removed.
    pub fn remove(&mut self, pattern: &HeaderFieldList) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(_, e)| e.pattern != *pattern);
        before - self.entries.len()
    }

    /// Look up the action for a packet's flow key arriving from
    /// `in_port`. Specificity tie-breaking counts an `in_port` match as
    /// more specific than a wildcard port.
    pub fn lookup(&mut self, key: &FlowKey, in_port: NodeId) -> Option<SdnAction> {
        let best = self
            .entries
            .iter()
            .filter(|(_, e)| e.pattern.matches(key) && e.in_port.is_none_or(|p| p == in_port))
            .max_by_key(|(seq, e)| {
                let score = e.pattern.wildcard_score() + u32::from(e.in_port.is_none());
                (e.priority, std::cmp::Reverse(score), *seq)
            });
        match best {
            Some((_, e)) => {
                self.hits += 1;
                Some(e.action)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over installed rules (install order).
    pub fn rules(&self) -> impl Iterator<Item = &FlowRule> {
        self.entries.iter().map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmb_types::IpPrefix;
    use std::net::Ipv4Addr;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn key() -> FlowKey {
        FlowKey::tcp(ip("1.1.1.5"), 1234, ip("2.2.2.2"), 80)
    }

    const PORT: NodeId = NodeId(99);

    #[test]
    fn priority_wins() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(HeaderFieldList::any(), 1, SdnAction::Forward(NodeId(1))));
        t.install(FlowRule::new(
            HeaderFieldList::from_src_subnet(IpPrefix::new(ip("1.1.1.0"), 24)),
            10,
            SdnAction::Forward(NodeId(2)),
        ));
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Forward(NodeId(2))));
    }

    #[test]
    fn specificity_breaks_priority_ties() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(
            HeaderFieldList::from_src_subnet(IpPrefix::new(ip("1.0.0.0"), 8)),
            5,
            SdnAction::Forward(NodeId(1)),
        ));
        t.install(FlowRule::new(
            HeaderFieldList::from_src_subnet(IpPrefix::new(ip("1.1.1.0"), 24)),
            5,
            SdnAction::Forward(NodeId(2)),
        ));
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Forward(NodeId(2))));
    }

    #[test]
    fn newest_breaks_full_ties() {
        let mut t = FlowTable::new();
        let pat_a = HeaderFieldList::from_src_subnet(IpPrefix::new(ip("1.1.1.0"), 24));
        let pat_b = HeaderFieldList::from_dst_subnet(IpPrefix::new(ip("2.2.2.0"), 24));
        t.install(FlowRule::new(pat_a, 5, SdnAction::Forward(NodeId(1))));
        t.install(FlowRule::new(pat_b, 5, SdnAction::Forward(NodeId(2))));
        // Same priority, same wildcard score -> later install wins.
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Forward(NodeId(2))));
    }

    #[test]
    fn identical_pattern_overwrites() {
        let mut t = FlowTable::new();
        let pat = HeaderFieldList::exact(key());
        t.install(FlowRule::new(pat, 5, SdnAction::Forward(NodeId(1))));
        t.install(FlowRule::new(pat, 5, SdnAction::Drop));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Drop));
    }

    #[test]
    fn in_port_disambiguates_mb_traversal() {
        // Pre-MB packets (from upstream port) go to the MB; post-MB
        // packets (from the MB port) continue downstream — same 5-tuple.
        let mut t = FlowTable::new();
        let upstream = NodeId(1);
        let mb = NodeId(2);
        let downstream = NodeId(3);
        t.install(
            FlowRule::new(HeaderFieldList::any(), 5, SdnAction::Forward(mb)).from_port(upstream),
        );
        t.install(
            FlowRule::new(HeaderFieldList::any(), 5, SdnAction::Forward(downstream)).from_port(mb),
        );
        assert_eq!(t.lookup(&key(), upstream), Some(SdnAction::Forward(mb)));
        assert_eq!(t.lookup(&key(), mb), Some(SdnAction::Forward(downstream)));
        assert_eq!(t.lookup(&key(), NodeId(7)), None);
    }

    #[test]
    fn port_match_is_more_specific() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(HeaderFieldList::any(), 5, SdnAction::Drop));
        t.install(
            FlowRule::new(HeaderFieldList::any(), 5, SdnAction::Forward(NodeId(1))).from_port(PORT),
        );
        assert_eq!(t.lookup(&key(), PORT), Some(SdnAction::Forward(NodeId(1))));
        assert_eq!(t.lookup(&key(), NodeId(7)), Some(SdnAction::Drop));
    }

    #[test]
    fn miss_counts() {
        let mut t = FlowTable::new();
        assert_eq!(t.lookup(&key(), PORT), None);
        assert_eq!(t.misses, 1);
        assert_eq!(t.hits, 0);
    }

    #[test]
    fn remove_by_pattern() {
        let mut t = FlowTable::new();
        let pat = HeaderFieldList::exact(key());
        t.install(FlowRule::new(pat, 5, SdnAction::Drop));
        assert_eq!(t.remove(&pat), 1);
        assert!(t.is_empty());
        assert_eq!(t.remove(&pat), 0);
    }
}

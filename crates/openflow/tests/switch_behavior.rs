//! Behavioral tests of the OpenFlow-style switch inside the simulator:
//! rule-driven forwarding, table-miss handling (drop or packet-in),
//! barriers, and mid-run rule updates with in-flight packets.

use openmb_openflow::Switch;
use openmb_simnet::{Ctx, Frame, Node, Sim, SimDuration, SimTime};
use openmb_types::sdn::{FlowRule, SdnAction, SdnMessage};
use openmb_types::{FlowKey, HeaderFieldList, NodeId, Packet};
use std::net::Ipv4Addr;

/// Records every frame it receives.
#[derive(Default)]
struct Probe {
    data: Vec<(SimTime, u64)>,
    sdn: Vec<SdnMessage>,
}

impl Node for Probe {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, frame: Frame) {
        match frame {
            Frame::Data(p) => self.data.push((ctx.now(), p.id)),
            Frame::Sdn(m) => self.sdn.push(m),
            Frame::Control(_) => {}
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn key(port: u16) -> FlowKey {
    FlowKey::tcp(Ipv4Addr::new(10, 0, 0, 1), 5000, Ipv4Addr::new(20, 0, 0, 1), port)
}

fn pkt(id: u64, port: u16) -> Packet {
    Packet::new(id, key(port), vec![0u8; 50])
}

/// Topology: probe_a(0) — switch(1) — probe_b(2), controller probe(3).
fn world(switch: Switch) -> (Sim, NodeId, NodeId, NodeId, NodeId) {
    let mut sim = Sim::new();
    let a = sim.add_node(Box::new(Probe::default()));
    let s = sim.add_node(Box::new(switch));
    let b = sim.add_node(Box::new(Probe::default()));
    let c = sim.add_node(Box::new(Probe::default()));
    sim.add_link(a, s, SimDuration::from_micros(10), 0);
    sim.add_link(s, b, SimDuration::from_micros(10), 0);
    sim.add_link(s, c, SimDuration::from_micros(10), 0);
    (sim, a, s, b, c)
}

#[test]
fn forwards_by_rule_and_counts_misses() {
    let mut sw = Switch::new("t");
    sw.preinstall(FlowRule::new(
        HeaderFieldList::from_dst_port(80),
        5,
        SdnAction::Forward(NodeId(2)),
    ));
    let (mut sim, a, s, b, _c) = world(sw);
    sim.inject_frame(SimTime(0), a, s, Frame::Data(pkt(1, 80)));
    sim.inject_frame(SimTime(1), a, s, Frame::Data(pkt(2, 443))); // miss
    sim.run(1000);
    let probe: &Probe = sim.node_as(b);
    assert_eq!(probe.data.iter().map(|(_, id)| *id).collect::<Vec<_>>(), vec![1]);
    let sw: &Switch = sim.node_as(s);
    assert_eq!(sw.dropped, 1, "miss without controller drops");
    assert_eq!(sw.table().hits, 1);
    assert_eq!(sw.table().misses, 1);
}

#[test]
fn miss_becomes_packet_in_when_controller_attached() {
    let sw = Switch::new("t").with_controller(NodeId(3));
    let (mut sim, a, s, _b, c) = world(sw);
    sim.inject_frame(SimTime(0), a, s, Frame::Data(pkt(7, 9999)));
    sim.run(1000);
    let ctrl: &Probe = sim.node_as(c);
    assert_eq!(ctrl.sdn.len(), 1);
    assert!(matches!(&ctrl.sdn[0], SdnMessage::PacketIn { packet } if packet.id == 7));
}

#[test]
fn flow_mod_takes_effect_between_packets() {
    // First packet dropped (no rule); a FlowMod lands; second forwarded.
    let sw = Switch::new("t");
    let (mut sim, a, s, b, _c) = world(sw);
    sim.inject_frame(SimTime(0), a, s, Frame::Data(pkt(1, 80)));
    sim.inject_frame(
        SimTime(1_000),
        a,
        s,
        Frame::Sdn(SdnMessage::FlowMod(FlowRule::new(
            HeaderFieldList::from_dst_port(80),
            5,
            SdnAction::Forward(NodeId(2)),
        ))),
    );
    sim.inject_frame(SimTime(2_000), a, s, Frame::Data(pkt(2, 80)));
    sim.run(1000);
    let probe: &Probe = sim.node_as(b);
    assert_eq!(probe.data.iter().map(|(_, id)| *id).collect::<Vec<_>>(), vec![2]);
}

#[test]
fn barrier_replies_after_mods() {
    let sw = Switch::new("t");
    let (mut sim, _a, s, _b, c) = world(sw);
    sim.inject_frame(
        SimTime(0),
        c,
        s,
        Frame::Sdn(SdnMessage::FlowMod(FlowRule::new(HeaderFieldList::any(), 1, SdnAction::Drop))),
    );
    sim.inject_frame(SimTime(1), c, s, Frame::Sdn(SdnMessage::BarrierRequest { token: 42 }));
    sim.run(1000);
    let ctrl: &Probe = sim.node_as(c);
    assert_eq!(ctrl.sdn, vec![SdnMessage::BarrierReply { token: 42 }]);
    let sw: &Switch = sim.node_as(s);
    assert_eq!(sw.table().len(), 1);
}

#[test]
fn packet_out_injects_directly() {
    let sw = Switch::new("t");
    let (mut sim, _a, s, b, c) = world(sw);
    sim.inject_frame(
        SimTime(0),
        c,
        s,
        Frame::Sdn(SdnMessage::PacketOut {
            packet: pkt(9, 80),
            action: SdnAction::Forward(NodeId(2)),
        }),
    );
    sim.run(1000);
    let probe: &Probe = sim.node_as(b);
    assert_eq!(probe.data.len(), 1);
    assert_eq!(probe.data[0].1, 9);
}

#[test]
fn pipeline_delay_preserves_fifo_order() {
    let mut sw = Switch::new("t").with_forwarding_delay(SimDuration::from_micros(5));
    sw.preinstall(FlowRule::new(HeaderFieldList::any(), 1, SdnAction::Forward(NodeId(2))));
    let (mut sim, a, s, b, _c) = world(sw);
    for i in 0..20u64 {
        sim.inject_frame(SimTime(i * 1_000), a, s, Frame::Data(pkt(i + 1, 80)));
    }
    sim.run(10_000);
    let probe: &Probe = sim.node_as(b);
    let ids: Vec<u64> = probe.data.iter().map(|(_, id)| *id).collect();
    assert_eq!(ids, (1..=20).collect::<Vec<_>>(), "FIFO through the pipeline");
}

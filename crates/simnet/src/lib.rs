//! # openmb-simnet
//!
//! A deterministic discrete-event network simulator: the testbed
//! substitute on which every OpenMB experiment runs (see DESIGN.md §1).
//!
//! * [`engine::Sim`] — the event loop: nodes, links, virtual clock.
//! * [`engine::Node`] — the trait simulated elements implement.
//! * [`fault`] — deterministic fault injection (drop/delay/duplicate
//!   rules, scheduled crash/restart).
//! * [`time`] — integer virtual time.
//! * [`metrics`] — trace events, counters, latency samples, ECDFs.
//!
//! Determinism: the event queue orders by `(time, schedule-seq)`; all
//! randomness in workloads comes from seeded RNGs (including the fault
//! plan's); time is integer nanoseconds. Two runs of the same
//! configuration produce identical traces and fault logs.

pub mod engine;
pub mod fault;
pub mod metrics;
pub mod time;

pub use engine::{Ctx, Frame, Node, Sim};
pub use fault::{CrashEvent, FaultAction, FaultPlan, FaultRecord, FaultRule};
pub use metrics::{Ecdf, Metrics, TraceEvent, TraceKind};
// Observability substrate (re-exported so embeddings that already
// depend on the simulator get the span/recorder types without a
// separate dependency edge).
pub use openmb_obs as obs;
pub use time::{SimDuration, SimTime};

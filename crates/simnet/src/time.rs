//! Virtual time. The simulator's clock is a `u64` count of nanoseconds
//! since simulation start; all latencies and service times are
//! [`SimDuration`]s. Using integers keeps event ordering exact and the
//! whole simulation bit-for-bit deterministic.

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Add a duration, saturating at the far future.
    pub fn after(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Time elapsed since `earlier` (zero if `earlier` is later).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Whole seconds, fractional.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whole milliseconds, fractional.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (panics on negative/NaN).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The time needed to push `bytes` through a link of `bits_per_sec`.
    pub fn transmission(bytes: usize, bits_per_sec: u64) -> Self {
        if bits_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let bits = bytes as u128 * 8;
        SimDuration(((bits * 1_000_000_000) / bits_per_sec as u128) as u64)
    }

    /// Scale by an integer factor.
    pub fn scaled(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        self.after(rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO.after(SimDuration::from_millis(5));
        assert_eq!(t, SimTime(5_000_000));
        assert_eq!(t.since(SimTime(1_000_000)), SimDuration(4_000_000));
        assert_eq!(SimTime(1).since(SimTime(5)), SimDuration::ZERO);
    }

    #[test]
    fn transmission_time() {
        // 1500 bytes over 1 Gbps = 12 microseconds.
        let d = SimDuration::transmission(1500, 1_000_000_000);
        assert_eq!(d, SimDuration::from_micros(12));
        assert_eq!(SimDuration::transmission(100, 0), SimDuration::ZERO);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.001), SimDuration::from_millis(1));
        assert!((SimDuration::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }
}

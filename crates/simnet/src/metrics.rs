//! Measurement infrastructure: trace events (the raw material for
//! Figure 7's timeline), latency samples, and named counters.

use std::collections::BTreeMap;

use openmb_types::NodeId;

use crate::time::{SimDuration, SimTime};

/// What happened — the action categories plotted in Figure 7 of the
/// paper ("packet processing, event raising/processing, and operation
/// handling") plus generic counters for everything else we track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A middlebox processed a data packet.
    PacketProcessed { pkt_id: u64, http: bool },
    /// A middlebox raised a reprocess event.
    EventRaised,
    /// A middlebox consumed (replayed) a reprocess event.
    EventProcessed,
    /// A get/put/del/config southbound operation started at an MB.
    OpStart { op: &'static str },
    /// A southbound operation finished at an MB.
    OpEnd { op: &'static str },
    /// A packet was dropped (no route, suspended link, ...).
    PacketDropped { pkt_id: u64 },
    /// Free-form annotation.
    Note(String),
}

/// A single timestamped trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub time: SimTime,
    pub node: NodeId,
    pub kind: TraceKind,
}

/// Collects everything the experiments measure. One per simulation run.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Chronological activity log (append-only; the engine appends in
    /// event order so this is sorted by time).
    pub trace: Vec<TraceEvent>,
    /// Named monotonic counters.
    counters: BTreeMap<String, u64>,
    /// Named duration samples (e.g. per-packet processing latency).
    samples: BTreeMap<String, Vec<SimDuration>>,
    /// Whether the (possibly large) trace log should be recorded.
    pub record_trace: bool,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics { record_trace: true, ..Default::default() }
    }

    /// A metrics sink that skips the per-event trace (for large runs
    /// where only counters/samples matter).
    pub fn counters_only() -> Self {
        Metrics { record_trace: false, ..Default::default() }
    }

    /// Append a trace record.
    pub fn trace(&mut self, time: SimTime, node: NodeId, kind: TraceKind) {
        if self.record_trace {
            self.trace.push(TraceEvent { time, node, kind });
        }
    }

    /// Bump a named counter. Allocates the key only on the counter's
    /// first use — steady-state increments are allocation-free.
    pub fn incr(&mut self, name: &str, by: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Read a counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a duration sample under a name. Like [`Metrics::incr`],
    /// only the first sample for a name allocates the key.
    pub fn sample(&mut self, name: &str, d: SimDuration) {
        if let Some(v) = self.samples.get_mut(name) {
            v.push(d);
        } else {
            self.samples.insert(name.to_owned(), vec![d]);
        }
    }

    /// All samples recorded under a name.
    pub fn samples(&self, name: &str) -> &[SimDuration] {
        self.samples.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mean of a sample series in milliseconds, `None` if empty.
    pub fn mean_ms(&self, name: &str) -> Option<f64> {
        let s = self.samples(name);
        if s.is_empty() {
            return None;
        }
        Some(s.iter().map(|d| d.as_millis_f64()).sum::<f64>() / s.len() as f64)
    }

    /// Maximum of a sample series in milliseconds, `None` if empty.
    pub fn max_ms(&self, name: &str) -> Option<f64> {
        self.samples(name).iter().map(|d| d.as_millis_f64()).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) if v > a => v,
                Some(a) => a,
            })
        })
    }

    /// All counter names and values, for reports.
    pub fn all_counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Trace events of one node within a time window (for Fig 7).
    pub fn trace_window(
        &self,
        node: NodeId,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &TraceEvent> {
        self.trace.iter().filter(move |e| e.node == node && e.time >= from && e.time <= to)
    }
}

/// An empirical CDF over f64 observations (used for Figure 8).
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from unsorted observations (NaNs are rejected).
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(values.iter().all(|v| !v.is_nan()), "NaN observation");
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: values }
    }

    /// Fraction of observations ≤ `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of observations strictly above `x`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_or_below(x)
    }

    /// The p-th percentile (0 ≤ p ≤ 100) by nearest-rank.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil() as usize;
        Some(self.sorted[rank.clamp(1, self.sorted.len()) - 1])
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `(x, F(x))` points at the given xs, for plotting a CDF series.
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_at_or_below(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_samples() {
        let mut m = Metrics::new();
        m.incr("pkts", 3);
        m.incr("pkts", 2);
        assert_eq!(m.counter("pkts"), 5);
        assert_eq!(m.counter("absent"), 0);
        m.sample("lat", SimDuration::from_millis(2));
        m.sample("lat", SimDuration::from_millis(4));
        assert!((m.mean_ms("lat").unwrap() - 3.0).abs() < 1e-9);
        assert!((m.max_ms("lat").unwrap() - 4.0).abs() < 1e-9);
        assert!(m.mean_ms("none").is_none());
    }

    #[test]
    fn trace_window_filters() {
        let mut m = Metrics::new();
        let n = NodeId(1);
        m.trace(SimTime(10), n, TraceKind::EventRaised);
        m.trace(SimTime(20), NodeId(2), TraceKind::EventRaised);
        m.trace(SimTime(30), n, TraceKind::EventRaised);
        let in_window: Vec<_> = m.trace_window(n, SimTime(5), SimTime(25)).collect();
        assert_eq!(in_window.len(), 1);
    }

    #[test]
    fn trace_disabled_skips_recording() {
        let mut m = Metrics::counters_only();
        m.trace(SimTime(1), NodeId(0), TraceKind::EventRaised);
        assert!(m.trace.is_empty());
    }

    #[test]
    fn ecdf_basic() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((e.fraction_at_or_below(2.0) - 0.5).abs() < 1e-12);
        assert!((e.fraction_above(3.0) - 0.25).abs() < 1e-12);
        assert_eq!(e.percentile(50.0), Some(2.0));
        assert_eq!(e.percentile(100.0), Some(4.0));
        assert!(Ecdf::new(vec![]).percentile(50.0).is_none());
    }
}

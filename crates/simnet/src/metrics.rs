//! Measurement infrastructure: trace events (the raw material for
//! Figure 7's timeline), latency samples, and named counters.
//!
//! Counters and duration samples are backed by an [`openmb_obs::Registry`]
//! (counters live there outright; each sample is additionally mirrored
//! into a latency histogram), so a run's metrics export through the
//! registry's Prometheus/JSON serializers without a translation step.

use std::collections::BTreeMap;

use openmb_obs::Registry;
use openmb_types::NodeId;

use crate::time::{SimDuration, SimTime};

/// What happened — the action categories plotted in Figure 7 of the
/// paper ("packet processing, event raising/processing, and operation
/// handling") plus generic counters for everything else we track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A middlebox processed a data packet.
    PacketProcessed { pkt_id: u64, http: bool },
    /// A middlebox raised a reprocess event.
    EventRaised,
    /// A middlebox consumed (replayed) a reprocess event.
    EventProcessed,
    /// A get/put/del/config southbound operation started at an MB.
    OpStart { op: &'static str },
    /// A southbound operation finished at an MB.
    OpEnd { op: &'static str },
    /// A packet was dropped (no route, suspended link, ...).
    PacketDropped { pkt_id: u64 },
    /// Free-form annotation.
    Note(String),
}

/// A single timestamped trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub time: SimTime,
    pub node: NodeId,
    pub kind: TraceKind,
}

/// Collects everything the experiments measure. One per simulation run.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Chronological activity log (append-only; the engine appends in
    /// event order so this is sorted by time).
    pub trace: Vec<TraceEvent>,
    /// Counters (and mirrored sample histograms), exportable as
    /// Prometheus text or JSON via [`Metrics::registry`].
    registry: Registry,
    /// Named duration samples (e.g. per-packet processing latency).
    /// Kept as exact values for the experiment tables; the registry
    /// holds the same data bucketed as a histogram in milliseconds.
    samples: BTreeMap<String, Vec<SimDuration>>,
    /// Whether the (possibly large) trace log should be recorded.
    pub record_trace: bool,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics { record_trace: true, ..Default::default() }
    }

    /// A metrics sink that skips the per-event trace (for large runs
    /// where only counters/samples matter).
    pub fn counters_only() -> Self {
        Metrics { record_trace: false, ..Default::default() }
    }

    /// Append a trace record.
    pub fn trace(&mut self, time: SimTime, node: NodeId, kind: TraceKind) {
        if self.record_trace {
            self.trace.push(TraceEvent { time, node, kind });
        }
    }

    /// Bump a named counter. Allocates the key only on the counter's
    /// first use — steady-state increments are allocation-free.
    pub fn incr(&mut self, name: &str, by: u64) {
        self.registry.incr(name, by);
    }

    /// Read a counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.registry.counter(name)
    }

    /// The metrics registry backing this sink, for export
    /// (`registry().to_json()` / `to_prometheus_text()`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access (e.g. to set run-level gauges before
    /// export).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Record a duration sample under a name. Like [`Metrics::incr`],
    /// only the first sample for a name allocates the key. The sample
    /// is also mirrored into the registry as a `<name>` histogram
    /// observation in milliseconds.
    pub fn sample(&mut self, name: &str, d: SimDuration) {
        self.registry.observe(name, d.as_millis_f64());
        if let Some(v) = self.samples.get_mut(name) {
            v.push(d);
        } else {
            self.samples.insert(name.to_owned(), vec![d]);
        }
    }

    /// All samples recorded under a name.
    pub fn samples(&self, name: &str) -> &[SimDuration] {
        self.samples.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Mean of a sample series in milliseconds, `None` if empty.
    pub fn mean_ms(&self, name: &str) -> Option<f64> {
        let s = self.samples(name);
        if s.is_empty() {
            return None;
        }
        Some(s.iter().map(|d| d.as_millis_f64()).sum::<f64>() / s.len() as f64)
    }

    /// Maximum of a sample series in milliseconds, `None` if empty.
    pub fn max_ms(&self, name: &str) -> Option<f64> {
        self.samples(name).iter().map(|d| d.as_millis_f64()).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) if v > a => v,
                Some(a) => a,
            })
        })
    }

    /// All counter names and values, for reports.
    pub fn all_counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.registry.counters()
    }

    /// Trace events of one node within a time window (for Fig 7).
    ///
    /// The trace is appended in event order, so it is sorted by time:
    /// the window bounds are found by binary search
    /// (`partition_point`) and only the `[from, to]` slice is scanned
    /// for the node filter, rather than the whole trace.
    pub fn trace_window(
        &self,
        node: NodeId,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = &TraceEvent> {
        let lo = self.trace.partition_point(|e| e.time < from);
        let hi = lo + self.trace[lo..].partition_point(|e| e.time <= to);
        self.trace[lo..hi].iter().filter(move |e| e.node == node)
    }
}

/// An empirical CDF over f64 observations (used for Figure 8).
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from unsorted observations (NaNs are rejected).
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(values.iter().all(|v| !v.is_nan()), "NaN observation");
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: values }
    }

    /// Fraction of observations ≤ `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of observations strictly above `x`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_or_below(x)
    }

    /// The p-th percentile (0 ≤ p ≤ 100) by the **nearest-rank**
    /// convention: the smallest observation `x` such that at least
    /// `p`% of observations are ≤ `x`, i.e. the observation at 1-based
    /// rank `⌈p/100 · n⌉`.
    ///
    /// Edge cases follow from clamping that rank to `[1, n]`:
    ///
    /// * `p = 0` (rank 0 → clamped to 1) returns the **minimum**. This
    ///   is deliberate — the 0th percentile is defined here as the
    ///   smallest observation, not "a value below all observations".
    /// * `p = 100` returns the maximum; any `p > 100` also clamps to
    ///   the maximum rather than running off the end.
    /// * Negative `p` is rejected (`debug_assert` + clamp to minimum),
    ///   and an empty ECDF has no percentiles (`None`).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        debug_assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.sorted.is_empty() {
            return None;
        }
        let rank = ((p.max(0.0) / 100.0) * self.sorted.len() as f64).ceil() as usize;
        Some(self.sorted[rank.clamp(1, self.sorted.len()) - 1])
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `(x, F(x))` points at the given xs, for plotting a CDF series.
    pub fn series(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_at_or_below(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_samples() {
        let mut m = Metrics::new();
        m.incr("pkts", 3);
        m.incr("pkts", 2);
        assert_eq!(m.counter("pkts"), 5);
        assert_eq!(m.counter("absent"), 0);
        m.sample("lat", SimDuration::from_millis(2));
        m.sample("lat", SimDuration::from_millis(4));
        assert!((m.mean_ms("lat").unwrap() - 3.0).abs() < 1e-9);
        assert!((m.max_ms("lat").unwrap() - 4.0).abs() < 1e-9);
        assert!(m.mean_ms("none").is_none());
    }

    #[test]
    fn trace_window_filters() {
        let mut m = Metrics::new();
        let n = NodeId(1);
        m.trace(SimTime(10), n, TraceKind::EventRaised);
        m.trace(SimTime(20), NodeId(2), TraceKind::EventRaised);
        m.trace(SimTime(30), n, TraceKind::EventRaised);
        let in_window: Vec<_> = m.trace_window(n, SimTime(5), SimTime(25)).collect();
        assert_eq!(in_window.len(), 1);
    }

    #[test]
    fn trace_disabled_skips_recording() {
        let mut m = Metrics::counters_only();
        m.trace(SimTime(1), NodeId(0), TraceKind::EventRaised);
        assert!(m.trace.is_empty());
    }

    #[test]
    fn trace_window_binary_search_matches_linear_scan_on_large_trace() {
        let mut m = Metrics::new();
        // 10_000 events over two nodes with duplicate timestamps, so
        // the window bounds land inside runs of equal times.
        for i in 0..10_000u64 {
            let node = NodeId((i % 2) as u32);
            m.trace(SimTime((i / 4) * 10), node, TraceKind::EventRaised);
        }
        let node = NodeId(1);
        for (from, to) in [
            (SimTime(0), SimTime(0)),
            (SimTime(5), SimTime(95)),
            (SimTime(100), SimTime(100)),
            (SimTime(0), SimTime(u64::MAX)),
            (SimTime(24_990), SimTime(30_000)),
            (SimTime(30_001), SimTime(30_002)), // empty window
        ] {
            let fast: Vec<SimTime> = m.trace_window(node, from, to).map(|e| e.time).collect();
            let slow: Vec<SimTime> = m
                .trace
                .iter()
                .filter(|e| e.node == node && e.time >= from && e.time <= to)
                .map(|e| e.time)
                .collect();
            assert_eq!(fast, slow, "window [{from:?}, {to:?}]");
        }
    }

    #[test]
    fn counters_are_backed_by_the_registry() {
        let mut m = Metrics::new();
        m.incr("pkts", 2);
        m.sample("lat", SimDuration::from_millis(3));
        assert_eq!(m.registry().counter("pkts"), 2);
        let h = m.registry().histogram("lat").expect("sample mirrored as histogram");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(3.0));
        let json = m.registry().to_json();
        assert!(json.contains("\"pkts\":2"), "{json}");
    }

    #[test]
    fn ecdf_percentile_boundaries() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        // Nearest-rank convention: p = 0 is the minimum (rank clamps
        // to 1), p = 100 the maximum.
        assert_eq!(e.percentile(0.0), Some(1.0));
        assert_eq!(e.percentile(100.0), Some(4.0));
        // A tiny positive p already names the first observation.
        assert_eq!(e.percentile(0.0001), Some(1.0));
        // Rank boundaries: p = 25 is still the first observation
        // (⌈0.25·4⌉ = 1); just above it moves to the second.
        assert_eq!(e.percentile(25.0), Some(1.0));
        assert_eq!(e.percentile(25.1), Some(2.0));
        // Single observation: every p maps to it.
        let one = Ecdf::new(vec![7.0]);
        assert_eq!(one.percentile(0.0), Some(7.0));
        assert_eq!(one.percentile(50.0), Some(7.0));
        assert_eq!(one.percentile(100.0), Some(7.0));
    }

    #[test]
    fn ecdf_basic() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((e.fraction_at_or_below(2.0) - 0.5).abs() < 1e-12);
        assert!((e.fraction_above(3.0) - 0.25).abs() < 1e-12);
        assert_eq!(e.percentile(50.0), Some(2.0));
        assert_eq!(e.percentile(100.0), Some(4.0));
        assert!(Ecdf::new(vec![]).percentile(50.0).is_none());
    }
}

//! The discrete-event simulation engine.
//!
//! A [`Sim`] owns a set of [`Node`]s connected by [`Link`]s. Everything
//! that happens — packet arrivals, controller↔MB protocol messages, timer
//! expirations — is a scheduled event processed in strict virtual-time
//! order (ties broken by schedule order), making runs bit-for-bit
//! reproducible.
//!
//! Nodes exchange [`Frame`]s: data-plane packets or control-plane
//! protocol messages. Links model propagation latency plus
//! store-and-forward transmission time, and can be *suspended* (frames
//! queue at the head of the link) to model the traffic-halting baselines
//! of §8.1.2 (Split/Merge).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use openmb_obs::{NodeTag, Recorder, SpanEvent};
use openmb_types::{wire, NodeId, Packet};

use crate::fault::{FaultAction, FaultPlan, FaultRecord, FaultRule, RuleRng};
use crate::metrics::{Metrics, TraceKind};
use crate::time::{SimDuration, SimTime};

/// What travels over links.
#[derive(Debug, Clone)]
pub enum Frame {
    /// A data-plane packet.
    Data(Packet),
    /// An OpenMB control-plane message (controller ↔ MB).
    Control(wire::Message),
    /// An SDN control-plane message (controller ↔ switch).
    Sdn(openmb_types::sdn::SdnMessage),
}

impl Frame {
    /// Modeled wire size, for transmission-time and byte accounting.
    /// O(fields) arithmetic — control messages are *not* serialized to
    /// learn their length (see [`wire::encoded_len`]).
    pub fn wire_len(&self) -> usize {
        match self {
            Frame::Data(p) => p.wire_len(),
            // length prefix + encoded body
            Frame::Control(m) => 4 + wire::encoded_len(m),
            Frame::Sdn(m) => m.wire_len(),
        }
    }
}

/// A simulated element: host, switch, middlebox, or controller.
///
/// Implementations are pure state machines; all interaction with the
/// world goes through the [`Ctx`] handed to each callback.
pub trait Node {
    /// Invoked once before the first event is processed.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
    /// A frame arrived from a directly connected neighbor.
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, from: NodeId, frame: Frame);
    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
    /// The node just crashed (fault injection). While down it receives
    /// no frames or timers; use this to discard volatile state.
    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {}
    /// The node came back up after a crash.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_>) {}
    /// Diagnostic name used in panics and traces.
    fn name(&self) -> String {
        "node".to_owned()
    }
    /// Downcasting support, used by experiments to inspect node state
    /// after a run (e.g. read an IPS's logs).
    fn as_any(&self) -> &dyn std::any::Any;
    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// One direction of a link.
#[derive(Debug)]
struct Link {
    latency: SimDuration,
    /// Bits per second; 0 = infinite (no transmission delay).
    bandwidth_bps: u64,
    /// When the link finishes transmitting the frame currently on it.
    busy_until: SimTime,
    /// When true, frames queue here instead of being delivered.
    suspended: bool,
    held: VecDeque<Frame>,
    /// Total bytes ever carried (delivered) — experiment accounting.
    bytes_carried: u64,
}

#[derive(Debug)]
enum Payload {
    Frame {
        from: NodeId,
        frame: Frame,
    },
    Timer {
        token: u64,
    },
    /// Fault injection: the target goes down at this instant.
    Crash,
    /// Fault injection: the target comes back up.
    Restart,
    /// Fault injection: both directions of the link between the target
    /// and `peer` suspend at this instant (frames held in order).
    PartitionStart {
        peer: NodeId,
    },
    /// Fault injection: the partition heals; held frames are released.
    PartitionEnd {
        peer: NodeId,
    },
}

struct Scheduled {
    time: SimTime,
    seq: u64,
    target: NodeId,
    payload: Payload,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The world as seen from inside a [`Node`] callback.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: NodeId,
    world: &'a mut World,
    /// Metrics sink shared by the whole simulation.
    pub metrics: &'a mut Metrics,
    /// Flight recorder shared by the whole simulation (disabled by
    /// default; see [`Sim::set_recorder`]).
    obs: &'a Recorder,
    /// This node's interned name in the recorder.
    obs_tag: NodeTag,
}

impl Ctx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Send a frame to a directly connected neighbor. Panics if no link
    /// exists (a topology bug, not a runtime condition).
    pub fn send(&mut self, to: NodeId, frame: Frame) {
        self.world.send_frame(self.now, self.self_id, to, frame);
    }

    /// Deliver a frame to this node itself after `delay` (used to model
    /// internal queueing/processing stages).
    pub fn send_to_self(&mut self, delay: SimDuration, frame: Frame) {
        let t = self.now.after(delay);
        self.world.schedule(t, self.self_id, Payload::Frame { from: self.self_id, frame });
    }

    /// Fire `on_timer(token)` on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let t = self.now.after(delay);
        self.world.schedule(t, self.self_id, Payload::Timer { token });
    }

    /// Record a trace event attributed to this node at the current time.
    pub fn trace(&mut self, kind: TraceKind) {
        self.metrics.trace(self.now, self.self_id, kind);
    }

    /// Does a link from this node to `to` exist?
    pub fn has_link(&self, to: NodeId) -> bool {
        self.world.links.contains_key(&(self.self_id, to))
    }

    /// Record a span event attributed to this node at the current
    /// time. A no-op (one branch) unless a recorder is installed.
    #[inline]
    pub fn record(&self, op: Option<u64>, sub: Option<u64>, event: SpanEvent) {
        self.obs.record(self.now.0, self.obs_tag, op, sub, event);
    }

    /// The simulation's shared flight recorder (for nodes that embed a
    /// component wanting its own recorder handle, e.g. the controller
    /// core).
    pub fn recorder(&self) -> &Recorder {
        self.obs
    }
}

/// Installed fault plan plus its runtime state.
struct FaultState {
    /// Each rule paired with its private deterministic RNG stream.
    rules: Vec<(FaultRule, RuleRng)>,
    /// Nodes currently down.
    crashed: HashSet<NodeId>,
    /// Everything injected so far, in virtual-time order.
    log: Vec<FaultRecord>,
}

/// What the fault layer decided about a frame in flight.
enum Verdict {
    Pass,
    Drop,
    Delay(SimDuration),
    Duplicate,
}

struct World {
    queue: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    links: HashMap<(NodeId, NodeId), Link>,
    fault: Option<FaultState>,
    /// Shared flight recorder; fault injection attributes its span
    /// events to the synthetic "net" node.
    recorder: Recorder,
    net_tag: NodeTag,
}

impl World {
    fn schedule(&mut self, time: SimTime, target: NodeId, payload: Payload) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { time, seq, target, payload }));
    }

    /// Run the frame past the fault rules: the first rule whose filter
    /// matches *and* whose probability draw fires decides its fate. A
    /// draw is made on every filter match, fired or not, so a given
    /// rule's stream depends only on the frames it sees. `wire_len` is
    /// the frame's size, computed once by the caller.
    fn apply_faults(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        frame: &Frame,
        wire_len: usize,
    ) -> Verdict {
        let Some(fs) = self.fault.as_mut() else { return Verdict::Pass };
        for (rule, rng) in fs.rules.iter_mut() {
            if rule.from.is_some_and(|f| f != from)
                || rule.to.is_some_and(|t| t != to)
                || (rule.control_only && !matches!(frame, Frame::Control(_)))
                || now < rule.active_from
                || now >= rule.active_until
            {
                continue;
            }
            if rng.next_f64() >= rule.probability {
                continue;
            }
            return match rule.action {
                FaultAction::Drop => {
                    fs.log.push(FaultRecord::Dropped { at: now, from, to, wire_len });
                    Verdict::Drop
                }
                FaultAction::Delay(by) => {
                    fs.log.push(FaultRecord::Delayed { at: now, from, to, by });
                    Verdict::Delay(by)
                }
                FaultAction::Duplicate => {
                    fs.log.push(FaultRecord::Duplicated { at: now, from, to });
                    Verdict::Duplicate
                }
            };
        }
        Verdict::Pass
    }

    /// Suspend or resume the directed link `a -> b`; on resume the held
    /// frames re-enter [`send_frame`] in order (fault rules re-apply to
    /// them — deterministic, since rule streams depend only on the
    /// frames each rule sees). Returns frames released (resume) or
    /// currently held (suspend). Panics if the link does not exist.
    fn set_suspended(&mut self, now: SimTime, a: NodeId, b: NodeId, suspended: bool) -> usize {
        let link = self.links.get_mut(&(a, b)).unwrap_or_else(|| panic!("no link {a} -> {b}"));
        link.suspended = suspended;
        if suspended {
            link.held.len()
        } else {
            let held: Vec<Frame> = link.held.drain(..).collect();
            let n = held.len();
            for f in held {
                self.send_frame(now, a, b, f);
            }
            n
        }
    }

    /// The op id a frame belongs to, for span attribution of injected
    /// faults (None for data/SDN frames and op-less control messages).
    fn frame_op(frame: &Frame) -> Option<u64> {
        match frame {
            Frame::Control(m) => m.op_id().map(|o| o.0),
            _ => None,
        }
    }

    fn send_frame(&mut self, now: SimTime, from: NodeId, to: NodeId, frame: Frame) {
        // One length computation per scheduled frame: both the fault log
        // and the transmission model reuse it.
        let size = frame.wire_len();
        let verdict = self.apply_faults(now, from, to, &frame, size);
        if self.recorder.is_enabled() {
            let kind = match verdict {
                Verdict::Pass => None,
                Verdict::Drop => Some("drop"),
                Verdict::Delay(_) => Some("delay"),
                Verdict::Duplicate => Some("duplicate"),
            };
            if let Some(kind) = kind {
                self.recorder.record(
                    now.0,
                    self.net_tag,
                    Self::frame_op(&frame),
                    None,
                    SpanEvent::FaultInjected { kind },
                );
            }
        }
        if matches!(verdict, Verdict::Drop) {
            return;
        }
        let link =
            self.links.get_mut(&(from, to)).unwrap_or_else(|| panic!("no link {from} -> {to}"));
        if link.suspended {
            link.held.push_back(frame);
            return;
        }
        let tx = SimDuration::transmission(size, link.bandwidth_bps);
        // Store-and-forward with output-queue serialization: transmission
        // begins when the link is free.
        let start = now.max(link.busy_until);
        let done = start.after(tx);
        link.busy_until = done;
        link.bytes_carried += size as u64;
        let arrive = done.after(link.latency);
        match verdict {
            Verdict::Delay(by) => {
                self.schedule(arrive.after(by), to, Payload::Frame { from, frame });
            }
            Verdict::Duplicate => {
                self.schedule(arrive, to, Payload::Frame { from, frame: frame.clone() });
                self.schedule(arrive, to, Payload::Frame { from, frame });
            }
            _ => {
                self.schedule(arrive, to, Payload::Frame { from, frame });
            }
        }
    }
}

/// The simulation: nodes, links, clock, event queue, metrics.
pub struct Sim {
    now: SimTime,
    world: World,
    nodes: Vec<Option<Box<dyn Node>>>,
    started: bool,
    /// Metrics collected during the run.
    pub metrics: Metrics,
    /// Shared flight recorder (disabled unless [`Sim::set_recorder`]
    /// installs an enabled one).
    recorder: Recorder,
    /// Per-node interned names, parallel to `nodes`.
    node_tags: Vec<NodeTag>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// An empty simulation with trace recording enabled.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            world: World {
                queue: BinaryHeap::new(),
                seq: 0,
                links: HashMap::new(),
                fault: None,
                recorder: Recorder::disabled(),
                net_tag: NodeTag::NONE,
            },
            nodes: Vec::new(),
            started: false,
            metrics: Metrics::new(),
            recorder: Recorder::disabled(),
            node_tags: Vec::new(),
        }
    }

    /// Install a flight recorder: every node's span events (and the
    /// fault layer's, attributed to the synthetic "net" node) are
    /// recorded into it. Registers the names of all nodes added so
    /// far; nodes added later register on insertion.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.world.net_tag = rec.register("net");
        self.node_tags = self
            .nodes
            .iter()
            .map(|n| rec.register(&n.as_ref().expect("node is executing").name()))
            .collect();
        self.world.recorder = rec.clone();
        self.recorder = rec;
    }

    /// The simulation's flight recorder handle (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// An empty simulation that records only counters/samples (cheaper
    /// for large parameter sweeps).
    pub fn new_counters_only() -> Self {
        let mut s = Self::new();
        s.metrics = Metrics::counters_only();
        s
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.node_tags.push(self.recorder.register(&node.name()));
        self.nodes.push(Some(node));
        id
    }

    /// Add a bidirectional link with symmetric latency/bandwidth.
    /// `bandwidth_bps = 0` means no transmission delay.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, latency: SimDuration, bandwidth_bps: u64) {
        for (x, y) in [(a, b), (b, a)] {
            self.world.links.insert(
                (x, y),
                Link {
                    latency,
                    bandwidth_bps,
                    busy_until: SimTime::ZERO,
                    suspended: false,
                    held: VecDeque::new(),
                    bytes_carried: 0,
                },
            );
        }
    }

    /// Suspend or resume the directed link `a -> b`. While suspended,
    /// frames sent on it are held; on resume they are released in order.
    /// Returns the number of frames released (on resume) or currently
    /// held (on suspend).
    pub fn set_link_suspended(&mut self, a: NodeId, b: NodeId, suspended: bool) -> usize {
        self.world.set_suspended(self.now, a, b, suspended)
    }

    /// Number of frames currently held on the suspended link `a -> b`.
    pub fn link_held(&self, a: NodeId, b: NodeId) -> usize {
        self.world.links.get(&(a, b)).map(|l| l.held.len()).unwrap_or(0)
    }

    /// Total bytes delivered over the directed link `a -> b` so far.
    pub fn link_bytes(&self, a: NodeId, b: NodeId) -> u64 {
        self.world.links.get(&(a, b)).map(|l| l.bytes_carried).unwrap_or(0)
    }

    /// Install a [`FaultPlan`]: its message rules take effect for every
    /// frame sent from now on, and its crash/restart events are
    /// scheduled. Replaces any previously installed plan (the fault log
    /// is reset).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let rules = plan
            .rules
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let rng = RuleRng::new(plan.seed, i);
                (r, rng)
            })
            .collect();
        self.world.fault = Some(FaultState { rules, crashed: HashSet::new(), log: Vec::new() });
        for c in plan.crashes {
            assert!(c.at >= self.now, "cannot schedule a crash in the past");
            self.world.schedule(c.at, c.node, Payload::Crash);
            if let Some(r) = c.restart_at {
                assert!(r > c.at, "restart must follow the crash");
                self.world.schedule(r, c.node, Payload::Restart);
            }
        }
        for p in plan.partitions {
            assert!(p.from >= self.now, "cannot schedule a partition in the past");
            assert!(p.until > p.from, "partition must heal after it starts");
            self.world.schedule(p.from, p.a, Payload::PartitionStart { peer: p.b });
            self.world.schedule(p.until, p.a, Payload::PartitionEnd { peer: p.b });
        }
    }

    /// The faults injected so far, in virtual-time order. Empty when no
    /// plan is installed.
    pub fn fault_log(&self) -> &[FaultRecord] {
        self.world.fault.as_ref().map(|f| f.log.as_slice()).unwrap_or(&[])
    }

    /// Is `node` currently down due to an injected crash?
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.world.fault.as_ref().is_some_and(|f| f.crashed.contains(&node))
    }

    /// Inject a frame arrival at `target` (appearing to come from
    /// `from`) at absolute time `at`. Used by test fixtures and traffic
    /// sources configured before the run starts.
    pub fn inject_frame(&mut self, at: SimTime, from: NodeId, target: NodeId, frame: Frame) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.world.schedule(at, target, Payload::Frame { from, frame });
    }

    /// Inject a back-to-back packet train arriving at `target` at one
    /// instant. Each packet is still its own frame (the wire format is
    /// unchanged); scheduling them with consecutive sequence numbers at
    /// the same time delivers them in order before the receiver's next
    /// service slot, so a batching node (`MbNode::with_batch_max`) sees
    /// the whole train queued and coalesces it into one `process_batch`
    /// call. With batching off this is byte-identical to a loop over
    /// [`inject_frame`](Sim::inject_frame).
    pub fn inject_burst(
        &mut self,
        at: SimTime,
        from: NodeId,
        target: NodeId,
        pkts: impl IntoIterator<Item = openmb_types::Packet>,
    ) {
        assert!(at >= self.now, "cannot schedule in the past");
        for pkt in pkts {
            self.world.schedule(at, target, Payload::Frame { from, frame: Frame::Data(pkt) });
        }
    }

    /// Schedule a timer on `target` at absolute time `at`.
    pub fn inject_timer(&mut self, at: SimTime, target: NodeId, token: u64) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.world.schedule(at, target, Payload::Timer { token });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Borrow a node (e.g. to inspect its state after a run).
    ///
    /// # Panics
    /// Panics if `id` is out of range or the node is currently executing.
    pub fn node(&self, id: NodeId) -> &dyn Node {
        self.nodes[id.0 as usize].as_deref().expect("node is executing")
    }

    /// Mutably borrow a node (e.g. to reconfigure between phases).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Box<dyn Node> {
        self.nodes[id.0 as usize].as_mut().expect("node is executing")
    }

    /// Borrow a node downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the node is not a `T`.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> &T {
        self.node(id).as_any().downcast_ref::<T>().expect("node type mismatch")
    }

    /// Mutably borrow a node downcast to its concrete type.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.node_mut(id).as_any_mut().downcast_mut::<T>().expect("node type mismatch")
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            let mut node = self.nodes[i].take().expect("node missing at start");
            let mut ctx = Ctx {
                now: self.now,
                self_id: id,
                world: &mut self.world,
                metrics: &mut self.metrics,
                obs: &self.recorder,
                obs_tag: self.node_tags[i],
            };
            node.on_start(&mut ctx);
            self.nodes[i] = Some(node);
        }
    }

    /// Process events until the queue is empty or `limit` events have
    /// run. Returns the number of events processed.
    pub fn run(&mut self, limit: u64) -> u64 {
        self.run_until(SimTime(u64::MAX), limit)
    }

    /// Process events with `time <= until` (and at most `limit` of
    /// them). The clock is left at the last processed event (or `until`
    /// if the queue drained earlier than that... no: clock advances to
    /// `until` when it stops due to the time bound). Returns events
    /// processed.
    pub fn run_until(&mut self, until: SimTime, limit: u64) -> u64 {
        self.start_if_needed();
        let mut processed = 0;
        while processed < limit {
            let Some(Reverse(head)) = self.world.queue.peek() else { break };
            if head.time > until {
                break;
            }
            let Reverse(ev) = self.world.queue.pop().unwrap();
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            // Partitions act on the link, not the node, so they are
            // handled here — before the target is taken, and regardless
            // of whether either endpoint is crashed.
            match ev.payload {
                Payload::PartitionStart { peer } => {
                    self.world.set_suspended(ev.time, ev.target, peer, true);
                    self.world.set_suspended(ev.time, peer, ev.target, true);
                    if let Some(fs) = self.world.fault.as_mut() {
                        fs.log.push(FaultRecord::Partitioned {
                            at: ev.time,
                            a: ev.target,
                            b: peer,
                        });
                    }
                    processed += 1;
                    continue;
                }
                Payload::PartitionEnd { peer } => {
                    let n = self.world.set_suspended(ev.time, ev.target, peer, false)
                        + self.world.set_suspended(ev.time, peer, ev.target, false);
                    if let Some(fs) = self.world.fault.as_mut() {
                        fs.log.push(FaultRecord::Healed {
                            at: ev.time,
                            a: ev.target,
                            b: peer,
                            released: n,
                        });
                    }
                    processed += 1;
                    continue;
                }
                _ => {}
            }
            // A downed node receives nothing: frames and timers addressed
            // to it while crashed are discarded (and logged).
            if let Some(fs) = self.world.fault.as_mut() {
                if fs.crashed.contains(&ev.target)
                    && matches!(ev.payload, Payload::Frame { .. } | Payload::Timer { .. })
                {
                    fs.log.push(FaultRecord::LostToCrash { at: ev.time, node: ev.target });
                    let op = match &ev.payload {
                        Payload::Frame { frame, .. } => World::frame_op(frame),
                        _ => None,
                    };
                    self.recorder.record(
                        ev.time.0,
                        self.node_tags[ev.target.0 as usize],
                        op,
                        None,
                        SpanEvent::FaultInjected { kind: "lost-to-crash" },
                    );
                    processed += 1;
                    continue;
                }
            }
            let idx = ev.target.0 as usize;
            let Some(mut node) = self.nodes.get_mut(idx).and_then(Option::take) else {
                panic!("event for unknown or executing node {}", ev.target);
            };
            {
                let mut ctx = Ctx {
                    now: self.now,
                    self_id: ev.target,
                    world: &mut self.world,
                    metrics: &mut self.metrics,
                    obs: &self.recorder,
                    obs_tag: self.node_tags[ev.target.0 as usize],
                };
                match ev.payload {
                    Payload::Frame { from, frame } => node.on_frame(&mut ctx, from, frame),
                    Payload::Timer { token } => node.on_timer(&mut ctx, token),
                    Payload::Crash => {
                        ctx.record(None, None, SpanEvent::FaultInjected { kind: "crash" });
                        node.on_crash(&mut ctx);
                        if let Some(fs) = ctx.world.fault.as_mut() {
                            fs.crashed.insert(ev.target);
                            fs.log.push(FaultRecord::Crashed { at: ev.time, node: ev.target });
                        }
                    }
                    Payload::Restart => {
                        ctx.record(None, None, SpanEvent::FaultInjected { kind: "restart" });
                        if let Some(fs) = ctx.world.fault.as_mut() {
                            fs.crashed.remove(&ev.target);
                            fs.log.push(FaultRecord::Restarted { at: ev.time, node: ev.target });
                        }
                        node.on_restart(&mut ctx);
                    }
                    Payload::PartitionStart { .. } | Payload::PartitionEnd { .. } => {
                        unreachable!("partitions are handled before node dispatch")
                    }
                }
            }
            self.nodes[idx] = Some(node);
            processed += 1;
        }
        if self.now < until && until.0 != u64::MAX && self.world.queue.is_empty() {
            self.now = until;
        }
        processed
    }

    /// True when no events remain.
    pub fn is_idle(&self) -> bool {
        self.world.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmb_types::{FlowKey, OpId};
    use std::net::Ipv4Addr;

    /// Echoes every data frame back to its sender after a fixed delay.
    struct Echo {
        delay: SimDuration,
        seen: Vec<(SimTime, u64)>,
    }

    impl Node for Echo {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, from: NodeId, frame: Frame) {
            if let Frame::Data(p) = frame {
                self.seen.push((ctx.now(), p.id));
                let reply = p.clone();
                let d = self.delay;
                ctx.set_timer(d, p.id);
                // Hold the packet implicitly: echo on timer for delay
                // modeling; for the test just send immediately.
                ctx.send(from, Frame::Data(reply));
            }
        }
    }

    /// Counts frames it receives.
    #[derive(Default)]
    struct Sink {
        got: Vec<(SimTime, u64)>,
    }

    impl Node for Sink {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, frame: Frame) {
            if let Frame::Data(p) = frame {
                self.got.push((ctx.now(), p.id));
            }
        }
    }

    fn pkt(id: u64, len: usize) -> Packet {
        let key = FlowKey::tcp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 80);
        Packet::new(id, key, vec![0u8; len])
    }

    #[test]
    fn latency_is_applied() {
        let mut sim = Sim::new();
        let a = sim.add_node(Box::new(Sink::default()));
        let b = sim.add_node(Box::new(Sink::default()));
        sim.add_link(a, b, SimDuration::from_millis(3), 0);
        sim.inject_frame(SimTime::ZERO, b, a, Frame::Data(pkt(1, 0)));
        // a receives at t=0 (injected directly), then we make a send to b.
        // Simpler: inject at a delivered frame; verify via send path below.
        sim.run(100);
        // Now drive an actual link traversal: schedule echo.
        let mut sim = Sim::new();
        let e = sim.add_node(Box::new(Echo { delay: SimDuration::ZERO, seen: vec![] }));
        let s = sim.add_node(Box::new(Sink::default()));
        sim.add_link(e, s, SimDuration::from_millis(3), 0);
        // Inject a frame at the echo node; it sends to... its sender, s.
        sim.inject_frame(SimTime::ZERO, s, e, Frame::Data(pkt(7, 0)));
        sim.run(100);
        let sink: &Sink = sim.node_as(s);
        assert_eq!(sink.got.len(), 1);
        assert_eq!(sink.got[0].0, SimTime(3_000_000));
    }

    #[test]
    fn bandwidth_serializes_frames() {
        // Two 1000-byte payload packets over 8 Mbps: (1040*8)/8e6 s =
        // 1.04 ms each; second must wait for the first.
        let mut sim = Sim::new();
        let e = sim.add_node(Box::new(Echo { delay: SimDuration::ZERO, seen: vec![] }));
        let s = sim.add_node(Box::new(Sink::default()));
        sim.add_link(e, s, SimDuration::ZERO, 8_000_000);
        sim.inject_frame(SimTime::ZERO, s, e, Frame::Data(pkt(1, 1000)));
        sim.inject_frame(SimTime::ZERO, s, e, Frame::Data(pkt(2, 1000)));
        sim.run(100);
        let sink: &Sink = sim.node_as(s);
        assert_eq!(sink.got.len(), 2);
        assert_eq!(sink.got[0].0, SimTime(1_040_000));
        assert_eq!(sink.got[1].0, SimTime(2_080_000));
    }

    #[test]
    fn events_process_in_time_order_with_fifo_ties() {
        let mut sim = Sim::new();
        let s = sim.add_node(Box::new(Sink::default()));
        sim.inject_frame(SimTime(100), s, s, Frame::Data(pkt(1, 0)));
        sim.inject_frame(SimTime(50), s, s, Frame::Data(pkt(2, 0)));
        sim.inject_frame(SimTime(100), s, s, Frame::Data(pkt(3, 0)));
        sim.run(100);
        let sink: &Sink = sim.node_as(s);
        let ids: Vec<u64> = sink.got.iter().map(|(_, id)| *id).collect();
        assert_eq!(ids, vec![2, 1, 3], "time order, then injection order");
    }

    #[test]
    fn suspension_holds_and_releases_in_order() {
        let mut sim = Sim::new();
        let e = sim.add_node(Box::new(Echo { delay: SimDuration::ZERO, seen: vec![] }));
        let s = sim.add_node(Box::new(Sink::default()));
        sim.add_link(e, s, SimDuration::from_millis(1), 0);
        sim.set_link_suspended(e, s, true);
        sim.inject_frame(SimTime::ZERO, s, e, Frame::Data(pkt(1, 0)));
        sim.inject_frame(SimTime(10), s, e, Frame::Data(pkt(2, 0)));
        sim.run(100);
        assert_eq!(sim.link_held(e, s), 2, "both frames held");
        let released = sim.set_link_suspended(e, s, false);
        assert_eq!(released, 2);
        sim.run(100);
        let sink: &Sink = sim.node_as(s);
        assert_eq!(sink.got.iter().map(|(_, id)| *id).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn partition_holds_both_directions_and_heals() {
        let mut sim = Sim::new();
        let e = sim.add_node(Box::new(Echo { delay: SimDuration::ZERO, seen: vec![] }));
        let s = sim.add_node(Box::new(Sink::default()));
        sim.add_link(e, s, SimDuration::from_millis(1), 0);
        sim.set_fault_plan(FaultPlan::seeded(1).partition(
            e,
            s,
            SimTime(5_000_000),
            SimTime(50_000_000),
        ));
        // Before the window: delivered normally (echo replies at t=0,
        // link latency 1 ms).
        sim.inject_frame(SimTime::ZERO, s, e, Frame::Data(pkt(1, 0)));
        // During the window: the echo's reply is held at the link head
        // (injection itself bypasses links, so the inbound copy lands).
        sim.inject_frame(SimTime(10_000_000), s, e, Frame::Data(pkt(2, 0)));
        sim.run(100);
        let sink: &Sink = sim.node_as(s);
        assert_eq!(sink.got.len(), 2, "nothing lost, only delayed");
        assert_eq!(sink.got[0].0, SimTime(1_000_000));
        assert_eq!(sink.got[1].0, SimTime(51_000_000), "released at heal + latency");
        assert!(matches!(sim.fault_log()[0], FaultRecord::Partitioned { .. }));
        assert!(matches!(sim.fault_log()[1], FaultRecord::Healed { released: 1, .. }));
    }

    #[test]
    fn control_frames_have_wire_cost() {
        let f = Frame::Control(wire::Message::OpAck { op: OpId(1) });
        assert!(f.wire_len() > 4);
    }

    #[test]
    fn run_until_respects_bound() {
        let mut sim = Sim::new();
        let s = sim.add_node(Box::new(Sink::default()));
        sim.inject_frame(SimTime(100), s, s, Frame::Data(pkt(1, 0)));
        sim.inject_frame(SimTime(200), s, s, Frame::Data(pkt(2, 0)));
        let n = sim.run_until(SimTime(150), 1000);
        assert_eq!(n, 1);
        assert_eq!(sim.now(), SimTime(100));
        let n = sim.run_until(SimTime(300), 1000);
        assert_eq!(n, 1);
        assert!(sim.is_idle());
    }
}

//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a *seeded schedule* of message-level faults
//! (drop/delay/duplicate, filtered by link direction and frame class)
//! plus node-level crash/restart events at chosen virtual times. The
//! engine applies it inside frame delivery, so the same plan + the same
//! workload produces a byte-identical [`FaultRecord`] log on every run —
//! experiments assert replay equality instead of hoping the race
//! happened the same way twice.
//!
//! Probabilistic rules draw from a private splitmix64 stream seeded by
//! [`FaultPlan::seed`]; the draw happens on every *filter* match (not
//! only on fired faults), so adding a rule with `probability: 0.0`
//! still perturbs nothing and removing one never shifts the stream of
//! the rules before it (each rule owns its own stream, keyed by seed
//! and rule index).

use openmb_types::NodeId;

use crate::time::{SimDuration, SimTime};

/// What a matching [`FaultRule`] does to a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The frame is silently lost.
    Drop,
    /// Delivery is postponed by this extra delay.
    Delay(SimDuration),
    /// The frame is delivered twice.
    Duplicate,
}

/// A message-level fault rule. Fields left `None` match anything.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Only frames sent by this node.
    pub from: Option<NodeId>,
    /// Only frames addressed to this node.
    pub to: Option<NodeId>,
    /// Only control-plane frames (southbound protocol messages); data
    /// packets and SDN messages pass untouched.
    pub control_only: bool,
    /// Chance the fault fires on a matching frame, in `[0, 1]`.
    pub probability: f64,
    /// What happens when the rule fires.
    pub action: FaultAction,
    /// Rule is active for frames sent at `active_from <= t < active_until`.
    pub active_from: SimTime,
    pub active_until: SimTime,
}

impl FaultRule {
    /// A rule matching every control frame on the directed link
    /// `from -> to`, active for the whole run, firing always.
    pub fn on_link(from: NodeId, to: NodeId, action: FaultAction) -> Self {
        FaultRule {
            from: Some(from),
            to: Some(to),
            control_only: true,
            probability: 1.0,
            action,
            active_from: SimTime::ZERO,
            active_until: SimTime(u64::MAX),
        }
    }

    /// Restrict the rule to frames sent in `[from, until)`.
    pub fn between(mut self, from: SimTime, until: SimTime) -> Self {
        self.active_from = from;
        self.active_until = until;
        self
    }

    /// Fire with probability `p` instead of always.
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p;
        self
    }
}

/// A node crash (and optional restart) at fixed virtual times.
#[derive(Debug, Clone, Copy)]
pub struct CrashEvent {
    pub node: NodeId,
    pub at: SimTime,
    /// When the node comes back, if ever. While down, every frame and
    /// timer addressed to it is discarded.
    pub restart_at: Option<SimTime>,
}

/// A link partition over a virtual-time window: *both* directions of
/// `a <-> b` are suspended at `from` and released at `until`, with
/// frames sent during the window held at the link head and delivered in
/// order on heal — the classic "network blip" a resumable transfer must
/// ride out, as opposed to a crash (which loses the frames).
#[derive(Debug, Clone, Copy)]
pub struct PartitionEvent {
    pub a: NodeId,
    pub b: NodeId,
    pub from: SimTime,
    pub until: SimTime,
}

/// A seeded schedule of faults to inject into a run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the probabilistic rules' private RNG streams.
    pub seed: u64,
    pub rules: Vec<FaultRule>,
    pub crashes: Vec<CrashEvent>,
    pub partitions: Vec<PartitionEvent>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Add a message-level rule.
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Crash `node` at `at`, never restarting.
    pub fn crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.crashes.push(CrashEvent { node, at, restart_at: None });
        self
    }

    /// Crash `node` at `at` and restart it at `restart_at`.
    pub fn crash_restart(mut self, node: NodeId, at: SimTime, restart_at: SimTime) -> Self {
        self.crashes.push(CrashEvent { node, at, restart_at: Some(restart_at) });
        self
    }

    /// Partition the bidirectional link `a <-> b` for `[from, until)`.
    pub fn partition(mut self, a: NodeId, b: NodeId, from: SimTime, until: SimTime) -> Self {
        self.partitions.push(PartitionEvent { a, b, from, until });
        self
    }
}

/// One injected fault, as it happened. The engine appends these in
/// virtual-time order; two runs with the same plan and workload must
/// produce identical logs (the determinism contract experiments assert,
/// e.g. by comparing `format!("{log:?}")` bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultRecord {
    Dropped {
        at: SimTime,
        from: NodeId,
        to: NodeId,
        wire_len: usize,
    },
    Delayed {
        at: SimTime,
        from: NodeId,
        to: NodeId,
        by: SimDuration,
    },
    Duplicated {
        at: SimTime,
        from: NodeId,
        to: NodeId,
    },
    Crashed {
        at: SimTime,
        node: NodeId,
    },
    Restarted {
        at: SimTime,
        node: NodeId,
    },
    /// A frame or timer discarded because its target was down.
    LostToCrash {
        at: SimTime,
        node: NodeId,
    },
    /// Both directions of `a <-> b` suspended.
    Partitioned {
        at: SimTime,
        a: NodeId,
        b: NodeId,
    },
    /// The partition lifted; `released` frames held during it resumed
    /// delivery (both directions combined).
    Healed {
        at: SimTime,
        a: NodeId,
        b: NodeId,
        released: usize,
    },
}

/// Per-rule deterministic RNG: splitmix64 over (seed, rule index).
#[derive(Debug, Clone)]
pub(crate) struct RuleRng {
    state: u64,
}

impl RuleRng {
    pub(crate) fn new(seed: u64, rule_idx: usize) -> Self {
        // Decorrelate the per-rule streams without chaining them, so
        // editing one rule never shifts another's draws.
        RuleRng { state: seed ^ (rule_idx as u64).wrapping_mul(0xA076_1D64_78BD_642F) }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_rng_is_deterministic_and_per_rule() {
        let mut a = RuleRng::new(42, 0);
        let mut b = RuleRng::new(42, 0);
        let mut c = RuleRng::new(42, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn plan_builder_collects_rules_and_crashes() {
        let plan = FaultPlan::seeded(7)
            .rule(FaultRule::on_link(NodeId(0), NodeId(1), FaultAction::Drop).with_probability(0.5))
            .crash_restart(NodeId(2), SimTime(10), SimTime(20));
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 1);
        assert_eq!(plan.crashes.len(), 1);
        assert_eq!(plan.crashes[0].restart_at, Some(SimTime(20)));
    }
}

//! # openmb-core
//!
//! The OpenMB MB controller (§5 of the paper) and its embeddings.
//!
//! * [`controller::ControllerCore`] — the sharded controller facade:
//!   northbound operations (`readConfig`, `writeConfig`, `stats`,
//!   `moveInternal`, `cloneSupport`, `mergeInternal`) admitted onto
//!   flowspace shards by the [`router::ShardRouter`] conflict detector.
//! * [`shard::ControllerShard`] — one shard's pure state machine:
//!   Figure 5 choreography, per-key reprocess-event buffering,
//!   quiescence-driven deletes, per-shard transfer/delete ledgers.
//! * [`parallel::ShardedController`] — the same facade behind per-shard
//!   locks, so OS threads drive disjoint shards concurrently.
//! * [`app`] — the control-application trait and the [`app::Api`] that
//!   unifies MB-state control with SDN routing updates and timers.
//! * [`nodes`] — discrete-event-simulation embeddings: [`nodes::MbNode`]
//!   (a middlebox with its processing-cost queue), [`nodes::ControllerNode`]
//!   (controller + SDN routing + control app), [`nodes::Host`].
//! * [`tcp`] — the same controller core served over real loopback TCP
//!   with the binary wire protocol, proving the protocol is transport-
//!   independent.

pub mod app;
pub mod chain;
pub mod controller;
pub mod nodes;
pub mod parallel;
pub mod placement;
pub mod router;
pub mod shard;
pub mod tcp;

pub use app::{Api, ApiCtx, ControlApp, NullApp};
pub use chain::{ChainHop, ChainSpec, ChainStatus, CHAIN_OP_BASE};
pub use controller::{Action, Completion, ControllerConfig, ControllerCore};
pub use nodes::{ControllerCosts, ControllerNode, Host, MbNode};
pub use parallel::ShardedController;
pub use placement::{select_destination, PlacementCandidate};
pub use router::{Admission, Route, ShardRouter};
pub use shard::{ControllerShard, TransferKind};

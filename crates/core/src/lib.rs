//! # openmb-core
//!
//! The OpenMB MB controller (§5 of the paper) and its embeddings.
//!
//! * [`controller::ControllerCore`] — the pure controller state machine:
//!   northbound operations (`readConfig`, `writeConfig`, `stats`,
//!   `moveInternal`, `cloneSupport`, `mergeInternal`), Figure 5
//!   choreography, per-key reprocess-event buffering, quiescence-driven
//!   deletes.
//! * [`app`] — the control-application trait and the [`app::Api`] that
//!   unifies MB-state control with SDN routing updates and timers.
//! * [`nodes`] — discrete-event-simulation embeddings: [`nodes::MbNode`]
//!   (a middlebox with its processing-cost queue), [`nodes::ControllerNode`]
//!   (controller + SDN routing + control app), [`nodes::Host`].
//! * [`tcp`] — the same controller core served over real loopback TCP
//!   with the binary wire protocol, proving the protocol is transport-
//!   independent.

pub mod app;
pub mod controller;
pub mod nodes;
pub mod tcp;

pub use app::{Api, ApiCtx, ControlApp, NullApp};
pub use controller::{Action, Completion, ControllerConfig, ControllerCore};
pub use nodes::{ControllerCosts, ControllerNode, Host, MbNode};

//! Control applications and the API they program against.
//!
//! A control application (§6) orchestrates middlebox state operations
//! *in tandem with* network forwarding changes. In the paper it runs on
//! top of both the MB controller (our [`ControllerCore`]) and the SDN
//! controller (our [`Topology`] + flow-mod dispatch); [`Api`] exposes
//! both sides plus timers, so an application can express sequences like
//! "move state, and only once the move completes, update routing"
//! (requirement R4).

use openmb_openflow::Topology;
use openmb_simnet::{SimDuration, SimTime};
use openmb_types::sdn::SdnMessage;
use openmb_types::wire::EventFilter;
use openmb_types::{ConfigValue, HeaderFieldList, HierarchicalKey, MbId, NodeId, OpId};

use crate::controller::{Action, Completion, ControllerCore};

/// A scenario-specific control application hosted on the controller.
pub trait ControlApp {
    /// Called once when the controller starts.
    fn on_start(&mut self, _api: &mut Api<'_>) {}
    /// Called for every northbound completion and subscribed MB event.
    fn on_completion(&mut self, _api: &mut Api<'_>, _c: &Completion) {}
    /// Called when a timer set via [`Api::set_timer`] fires.
    fn on_timer(&mut self, _api: &mut Api<'_>, _token: u64) {}
}

/// A no-op application, for experiments that drive the controller
/// manually.
pub struct NullApp;
impl ControlApp for NullApp {}

/// The borrowed context an embedding assembles to host an [`Api`] view.
///
/// Named fields replace the old six-positional-argument constructor:
/// three of those arguments were `&mut Vec` sinks of different element
/// types, and the compiler could not catch a transposition between the
/// two that shared a shape. Construct one per callback:
///
/// ```ignore
/// let mut api = Api::new(ApiCtx {
///     core: &mut self.core,
///     topo: &mut self.topo,
///     now,
///     actions: &mut actions,
///     sdn: &mut sdn,
///     timers: &mut timers,
/// });
/// ```
pub struct ApiCtx<'a> {
    /// The controller state machine northbound calls are applied to.
    pub core: &'a mut ControllerCore,
    /// The SDN controller's topology view.
    pub topo: &'a mut Topology,
    /// Current virtual time.
    pub now: SimTime,
    /// Sink for controller [`Action`]s the embedding must carry out.
    pub actions: &'a mut Vec<Action>,
    /// Sink for SDN messages to dispatch to switches.
    pub sdn: &'a mut Vec<(NodeId, SdnMessage)>,
    /// Sink for `(delay, token)` timer requests.
    pub timers: &'a mut Vec<(SimDuration, u64)>,
}

/// The application-facing surface: northbound MB-state operations (§5),
/// SDN routing updates, and timers.
pub struct Api<'a> {
    ctx: ApiCtx<'a>,
}

impl<'a> Api<'a> {
    /// Assemble an API view over an embedding's [`ApiCtx`].
    pub fn new(ctx: ApiCtx<'a>) -> Self {
        Api { ctx }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctx.now
    }

    // ---- northbound API (§5) ----

    /// `readConfig(SrcMB, key)`; completes with [`Completion::Config`].
    pub fn read_config(&mut self, src: MbId, key: &str) -> OpId {
        self.ctx.core.read_config(src, HierarchicalKey::parse(key), self.ctx.now, self.ctx.actions)
    }

    /// `writeConfig(DstMB, key, values)`; completes with
    /// [`Completion::Ack`].
    pub fn write_config(&mut self, dst: MbId, key: &str, values: Vec<ConfigValue>) -> OpId {
        self.ctx.core.write_config(
            dst,
            HierarchicalKey::parse(key),
            values,
            self.ctx.now,
            self.ctx.actions,
        )
    }

    /// Write a whole configuration previously read with
    /// `read_config(_, "*")` — the §6 clone idiom. Returns the op of the
    /// last write (all writes are independent).
    pub fn write_config_all(
        &mut self,
        dst: MbId,
        pairs: &[(HierarchicalKey, Vec<ConfigValue>)],
    ) -> Option<OpId> {
        let mut last = None;
        for (k, v) in pairs {
            last = Some(self.ctx.core.write_config(
                dst,
                k.clone(),
                v.clone(),
                self.ctx.now,
                self.ctx.actions,
            ));
        }
        last
    }

    /// `stats(SrcMB, key)`; completes with [`Completion::Stats`].
    pub fn stats(&mut self, src: MbId, key: HeaderFieldList) -> OpId {
        self.ctx.core.stats(src, key, self.ctx.now, self.ctx.actions)
    }

    /// `moveInternal(SrcMB, DstMB, key)`; completes with
    /// [`Completion::MoveComplete`].
    pub fn move_internal(&mut self, src: MbId, dst: MbId, key: HeaderFieldList) -> OpId {
        self.ctx.core.move_internal(src, dst, key, self.ctx.now, self.ctx.actions)
    }

    /// `cloneSupport(SrcMB, DstMB)`; completes with
    /// [`Completion::CloneComplete`].
    pub fn clone_support(&mut self, src: MbId, dst: MbId) -> OpId {
        self.ctx.core.clone_support(src, dst, self.ctx.now, self.ctx.actions)
    }

    /// `mergeInternal(SrcMB, DstMB)`; completes with
    /// [`Completion::MergeComplete`].
    pub fn merge_internal(&mut self, src: MbId, dst: MbId) -> OpId {
        self.ctx.core.merge_internal(src, dst, self.ctx.now, self.ctx.actions)
    }

    /// Chain-wide atomic move (see
    /// [`crate::controller::ControllerCore::chain_move`]); commits with
    /// [`Completion::ChainComplete`] once every hop's move finishes, or
    /// fails with [`Completion::Failed`] after rolling completed hops
    /// back. Applications repoint routing only on the chain completion,
    /// never on the per-hop `MoveComplete`s.
    pub fn chain_move(&mut self, spec: crate::chain::ChainSpec) -> OpId {
        self.ctx.core.chain_move(spec, self.ctx.now, self.ctx.actions)
    }

    /// Subscribe to introspection events from `mb` (§4.2.2).
    pub fn enable_events(&mut self, mb: MbId, filter: EventFilter) -> OpId {
        self.ctx.core.enable_events(mb, filter, self.ctx.now, self.ctx.actions)
    }

    /// Explicitly close a move/clone/merge transaction (see
    /// [`ControllerCore::end_op`]).
    pub fn end_op(&mut self, op: OpId) {
        self.ctx.core.end_op(op, self.ctx.now, self.ctx.actions);
    }

    /// Is `mb` currently marked unreachable by the embedding? Placement
    /// decisions consult this so a dead standby is never selected.
    pub fn is_unreachable(&self, mb: MbId) -> bool {
        self.ctx.core.is_unreachable(mb)
    }

    // ---- SDN side ----

    /// The SDN controller's topology view.
    pub fn topology(&mut self) -> &mut Topology {
        self.ctx.topo
    }

    /// Compute a waypointed path and install flow rules along it for
    /// `pattern` at `priority`. Returns false if no path exists.
    /// Rule installation messages travel to the switches with normal
    /// control-channel latency — exactly the window in which packets
    /// still reach the old middlebox (§4.2.1).
    pub fn route(
        &mut self,
        pattern: HeaderFieldList,
        priority: u16,
        src: NodeId,
        waypoints: &[NodeId],
        dst: NodeId,
    ) -> bool {
        let Some(path) = self.ctx.topo.waypoint_path(src, waypoints, dst) else {
            return false;
        };
        for (sw, msg) in self.ctx.topo.path_flow_mods(pattern, priority, &path) {
            self.ctx.sdn.push((sw, msg));
        }
        true
    }

    /// Send a raw SDN message to a switch.
    pub fn send_sdn(&mut self, switch: NodeId, msg: SdnMessage) {
        self.ctx.sdn.push((switch, msg));
    }

    // ---- timers ----

    /// Fire [`ControlApp::on_timer`] with `token` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.ctx.timers.push((delay, token));
    }
}

//! Simulation embeddings: middleboxes, the controller, and hosts as
//! discrete-event [`Node`]s.
//!
//! [`MbNode`] wraps a [`Middlebox`] with the processing model the
//! evaluation measures: a single work queue with per-item service times
//! from the MB's [`openmb_mb::CostModel`]. Data packets, southbound operations, and
//! event replays all share the queue, and a per-flow `get` is split into
//! batches that *interleave* with packet processing — which is why the
//! paper sees only a ≤2 % packet-latency impact during a get (§8.2)
//! instead of a stall, while the get itself scales linearly (Fig 9).
//!
//! [`ControllerNode`] embeds the [`ControllerCore`] plus the SDN
//! topology/routing module and one control application, mirroring the
//! paper's deployment of the MB controller as a Floodlight module.

use std::collections::VecDeque;

use openmb_mb::{Effects, Middlebox, SharedPutLog};
use openmb_obs::SpanEvent;
use openmb_openflow::Topology;
use openmb_simnet::{Ctx, Frame, Node, SimDuration, SimTime, TraceKind};
use openmb_types::sdn::SdnMessage;
use openmb_types::wire::Message;
use openmb_types::{MbId, NodeId, OpId, Packet, StateChunk};

use crate::app::{Api, ApiCtx, ControlApp};
use crate::controller::{Action, ControllerConfig, ControllerCore};

const TIMER_WORK: u64 = 1;
/// Timer tokens >= this deliver a completed background shared-state
/// export (serialization runs off the packet path, as in Bro/SmartRE
/// where a helper thread walks the state while the event loop keeps
/// processing packets).
const TIMER_SHARED_BASE: u64 = 1 << 20;

/// One queued unit of middlebox work.
enum Work {
    /// A data packet (normal processing).
    Packet { pkt: Packet, arrived: SimTime },
    /// A reprocess event to replay (§4.2.1 step 3).
    Replay { pkt: Packet },
    /// A batch of a streaming per-flow get: send chunks `idx..idx+n`.
    GetBatch {
        sub: OpId,
        chunks: Vec<StateChunk>,
        idx: usize,
        report: bool,
        /// The first batch also pays the linear-scan cost.
        first: bool,
        /// Entries resident at scan time (for the scan cost).
        scanned_entries: usize,
    },
    /// Any other southbound message, processed atomically.
    Msg(Message),
}

/// A middlebox embedded in the simulation.
///
/// Generic over the concrete middlebox type so experiments can downcast
/// (`sim.node_as::<MbNode<Monitor>>(id)`) and inspect internal state
/// after a run.
pub struct MbNode<M: Middlebox> {
    /// The middlebox logic (public: experiments inspect it post-run).
    pub logic: M,
    /// Controller attachment (protocol messages + events go here).
    controller: Option<NodeId>,
    /// Where processed packets are emitted (usually the attached switch).
    egress: Option<NodeId>,
    queue: VecDeque<Work>,
    busy: bool,
    label: String,
    /// Collected log lines (conn.log etc.), keyed by log name — the
    /// §8.2 correctness experiments diff these.
    pub logs: Vec<openmb_mb::LogEntry>,
    /// Packets processed (normal, not replay).
    pub packets_processed: u64,
    /// Events replayed.
    pub events_replayed: u64,
    /// Background shared exports awaiting their serialization delay,
    /// keyed by timer token.
    pending_shared:
        std::collections::HashMap<u64, (OpId, Option<openmb_types::EncryptedChunk>, bool)>,
    next_shared_token: u64,
    /// Optional override of the logic's cost model (experiments use
    /// this to, e.g., measure event generation below saturation).
    cost_override: Option<openmb_mb::CostModel>,
    /// Service time of the work item currently in progress.
    current_service: SimDuration,
    /// Accumulated busy time executing puts (ns) — Fig 9(b) measures the
    /// destination's put-processing time, independent of how fast the
    /// source's get stream paces chunk arrivals.
    pub busy_put_ns: u64,
    /// Accumulated busy time processing packets (ns).
    pub busy_packet_ns: u64,
    /// Shared-put dedup + pre-put snapshots for `DeleteState` rollback.
    /// Lives with the logic tables (survives a crash of the volatile
    /// runtime state — see `on_crash`).
    shared_log: SharedPutLog,
    /// Per-node metric names, formatted once at construction so the
    /// per-packet/per-event hot paths never allocate a key string.
    metric_names: MetricNames,
    /// Largest packet train handed to `process_batch` in one service
    /// slot. 1 (the default) takes the exact serial path.
    batch_max: usize,
    /// Packets claimed by the in-progress service slot: pump counts the
    /// run of consecutive `Work::Packet` items at the queue front and
    /// on_timer pops exactly that many.
    pending_batch: usize,
    /// Reused packet buffer for batched delivery (no per-batch Vec).
    batch_buf: Vec<Packet>,
    /// Arrival times matching `batch_buf`, for per-packet latency.
    batch_arrivals: Vec<SimTime>,
    /// Reused effects collector for batched delivery.
    fx_scratch: Effects,
}

/// Precomputed `"<label>.<metric>"` strings for [`MbNode`]'s hot paths.
struct MetricNames {
    events_raised: String,
    events_replayed: String,
    pkt_latency: String,
    packets: String,
    queue_depth: String,
    busy: String,
}

impl MetricNames {
    fn new(label: &str) -> Self {
        MetricNames {
            events_raised: format!("{label}.events_raised"),
            events_replayed: format!("{label}.events_replayed"),
            pkt_latency: format!("{label}.pkt_latency"),
            packets: format!("{label}.packets"),
            queue_depth: format!("{label}.queue_depth"),
            busy: format!("{label}.busy"),
        }
    }
}

impl<M: Middlebox + 'static> MbNode<M> {
    /// Wrap `logic`; connect it with the `with_controller`/`with_egress`
    /// builders.
    pub fn new(label: impl Into<String>, logic: M) -> Self {
        let label = label.into();
        MbNode {
            logic,
            controller: None,
            egress: None,
            queue: VecDeque::new(),
            busy: false,
            metric_names: MetricNames::new(&label),
            label,
            logs: Vec::new(),
            packets_processed: 0,
            events_replayed: 0,
            pending_shared: std::collections::HashMap::new(),
            next_shared_token: TIMER_SHARED_BASE,
            cost_override: None,
            current_service: SimDuration::ZERO,
            busy_put_ns: 0,
            busy_packet_ns: 0,
            shared_log: SharedPutLog::new(0),
            batch_max: 1,
            pending_batch: 0,
            batch_buf: Vec::new(),
            batch_arrivals: Vec::new(),
            fx_scratch: Effects::normal(),
        }
    }

    /// Let the node coalesce up to `n` consecutive queued packets into
    /// one `process_batch` call. Service time stays `n × per_packet`
    /// (batching amortizes the middlebox's own lookup work, not the
    /// modeled wire cost), so event order is unchanged at `n = 1`.
    pub fn with_batch_max(mut self, n: usize) -> Self {
        self.batch_max = n.max(1);
        self
    }

    /// Set the controller node events and replies are sent to.
    pub fn with_controller(mut self, controller: NodeId) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Set the egress neighbor processed packets are forwarded to.
    pub fn with_egress(mut self, egress: NodeId) -> Self {
        self.egress = Some(egress);
        self
    }

    /// Override the middlebox's cost model (experiments only).
    pub fn with_costs(mut self, costs: openmb_mb::CostModel) -> Self {
        self.cost_override = Some(costs);
        self
    }

    /// Override the cost model on an already-built node (experiments).
    pub fn set_cost_override(&mut self, costs: openmb_mb::CostModel) {
        self.cost_override = Some(costs);
    }

    fn costs(&self) -> openmb_mb::CostModel {
        self.cost_override.unwrap_or_else(|| self.logic.costs())
    }

    /// Lines of a named log, in order.
    pub fn log_lines(&self, name: &str) -> Vec<&str> {
        self.logs.iter().filter(|l| l.log == name).map(|l| l.line.as_str()).collect()
    }

    fn service_time(&self, w: &Work) -> SimDuration {
        let c = self.costs();
        match w {
            Work::Packet { .. } | Work::Replay { .. } => c.per_packet,
            Work::GetBatch { chunks, idx, first, scanned_entries, .. } => {
                let n = (chunks.len() - idx).min(c.get_batch);
                let batch = c.serialize_cost(n);
                if *first {
                    batch + c.scan_cost(*scanned_entries)
                } else {
                    batch
                }
            }
            Work::Msg(m) => match m {
                Message::PutSupportPerflow { .. }
                | Message::PutReportPerflow { .. }
                | Message::ChunkBody { .. } => c.deserialize_per_chunk,
                Message::PutSupportShared { chunk, .. }
                | Message::PutReportShared { chunk, .. } => c.shared_cost(chunk.len()),
                Message::GetStats { .. } => c.scan_cost(self.logic.perflow_entries()),
                Message::GetConfig { .. }
                | Message::SetConfig { .. }
                | Message::DelConfig { .. } => SimDuration::from_micros(100),
                _ => SimDuration::from_micros(10),
            },
        }
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        // Publish the load gauges placement reads
        // (`openmb_core::placement::gauge_load`): instantaneous queue
        // depth and busy flag. Pump runs after every enqueue/dequeue,
        // so this is the one place that sees every transition.
        let reg = ctx.metrics.registry_mut();
        reg.set_gauge(&self.metric_names.queue_depth, self.queue.len() as f64);
        if self.busy {
            reg.set_gauge(&self.metric_names.busy, 1.0);
            return;
        }
        if let Some(front) = self.queue.front() {
            let mut d = self.service_time(front);
            let mut n = 1;
            if self.batch_max > 1 && matches!(front, Work::Packet { .. }) {
                // Claim the whole run of consecutive packets at the
                // front: one service slot, K × per_packet long, so
                // the aggregate modeled cost matches serial delivery.
                while n < self.batch_max && matches!(self.queue.get(n), Some(Work::Packet { .. })) {
                    n += 1;
                }
                d = SimDuration(d.0 * n as u64);
            }
            self.pending_batch = n;
            self.current_service = d;
            self.busy = true;
            ctx.set_timer(d, TIMER_WORK);
        }
        ctx.metrics
            .registry_mut()
            .set_gauge(&self.metric_names.busy, if self.busy { 1.0 } else { 0.0 });
    }

    fn emit_effects(&mut self, ctx: &mut Ctx<'_>, fx: &mut Effects) {
        for out in fx.drain_outputs() {
            if let Some(egress) = self.egress {
                ctx.send(egress, Frame::Data(out));
            }
        }
        self.logs.extend(fx.take_logs());
        for ev in fx.take_events() {
            ctx.trace(TraceKind::EventRaised);
            ctx.metrics.incr(&self.metric_names.events_raised, 1);
            if let Some(c) = self.controller {
                ctx.send(c, Frame::Control(Message::EventMsg { event: ev }));
            }
        }
    }

    fn execute(&mut self, ctx: &mut Ctx<'_>, w: Work) {
        let now = ctx.now();
        match w {
            Work::Packet { pkt, arrived } => {
                let mut fx = Effects::normal();
                self.logic.process_packet(now, &pkt, &mut fx);
                self.packets_processed += 1;
                ctx.trace(TraceKind::PacketProcessed {
                    pkt_id: pkt.id,
                    http: pkt.key.dst_port == 80 || pkt.key.src_port == 80,
                });
                ctx.metrics.sample(&self.metric_names.pkt_latency, now.since(arrived));
                ctx.metrics.incr(&self.metric_names.packets, 1);
                self.emit_effects(ctx, &mut fx);
            }
            Work::Replay { pkt } => {
                let mut fx = Effects::replay();
                self.logic.process_packet(now, &pkt, &mut fx);
                self.events_replayed += 1;
                ctx.trace(TraceKind::EventProcessed);
                ctx.metrics.incr(&self.metric_names.events_replayed, 1);
                self.emit_effects(ctx, &mut fx);
            }
            Work::GetBatch { sub, chunks, idx, report, .. } => {
                let c = self.costs();
                let end = (idx + c.get_batch).min(chunks.len());
                let controller = self.controller.expect("get requires a controller");
                // The whole service batch leaves in one coalesced frame
                // (one length prefix, one scheduler event) instead of
                // one frame per chunk; the closing GetAck rides along
                // with the final batch.
                let mut msgs: Vec<Message> = chunks[idx..end]
                    .iter()
                    .map(|chunk| Message::Chunk { op: sub, chunk: chunk.clone() })
                    .collect();
                if end < chunks.len() {
                    // Re-queue at the back so packets interleave.
                    self.queue.push_back(Work::GetBatch {
                        sub,
                        chunks,
                        idx: end,
                        report,
                        first: false,
                        scanned_entries: 0,
                    });
                } else {
                    let count = chunks.len() as u32;
                    msgs.push(Message::GetAck { op: sub, count });
                    let op_name = if report { "getReportPerflow" } else { "getSupportPerflow" };
                    ctx.trace(TraceKind::OpEnd { op: op_name });
                }
                match msgs.len() {
                    0 => {}
                    1 => ctx.send(controller, Frame::Control(msgs.pop().expect("len 1"))),
                    n => {
                        ctx.record(None, Some(sub.0), SpanEvent::BatchFlushed { count: n as u32 });
                        ctx.send(controller, Frame::Control(Message::Batch { msgs }));
                    }
                }
            }
            Work::Msg(msg) => self.execute_msg(ctx, msg),
        }
    }

    /// Deliver the `n` packets pump claimed as one `process_batch`
    /// call. Per-packet accounting (traces, latency samples, counters)
    /// is unchanged; only the middlebox sees the train at once. All
    /// buffers are reused so the steady state allocates nothing.
    fn execute_packet_batch(&mut self, ctx: &mut Ctx<'_>, n: usize) {
        self.busy_packet_ns += self.current_service.0;
        self.batch_buf.clear();
        self.batch_arrivals.clear();
        for _ in 0..n {
            match self.queue.pop_front() {
                Some(Work::Packet { pkt, arrived }) => {
                    self.batch_arrivals.push(arrived);
                    self.batch_buf.push(pkt);
                }
                _ => unreachable!("pump claimed a run of {n} queued packets"),
            }
        }
        let now = ctx.now();
        let mut fx = std::mem::take(&mut self.fx_scratch);
        fx.reset();
        let pkts = std::mem::take(&mut self.batch_buf);
        self.logic.process_batch(now, &pkts, &mut fx);
        self.batch_buf = pkts;
        self.packets_processed += n as u64;
        for (pkt, arrived) in self.batch_buf.iter().zip(&self.batch_arrivals) {
            ctx.trace(TraceKind::PacketProcessed {
                pkt_id: pkt.id,
                http: pkt.key.dst_port == 80 || pkt.key.src_port == 80,
            });
            ctx.metrics.sample(&self.metric_names.pkt_latency, now.since(*arrived));
        }
        ctx.metrics.incr(&self.metric_names.packets, n as u64);
        self.emit_effects(ctx, &mut fx);
        self.fx_scratch = fx;
    }

    fn reply(&self, ctx: &mut Ctx<'_>, msg: Message) {
        if let Some(c) = self.controller {
            ctx.send(c, Frame::Control(msg));
        }
    }

    fn execute_msg(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        let now = ctx.now();
        match msg {
            Message::PutSupportPerflow { op, chunk } => {
                let key = chunk.key;
                match self.logic.put_support_perflow(chunk) {
                    Ok(()) => self.reply(ctx, Message::PutAck { op, key: Some(key) }),
                    Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
                }
            }
            Message::PutReportPerflow { op, chunk } => {
                let key = chunk.key;
                match self.logic.put_report_perflow(chunk) {
                    Ok(()) => self.reply(ctx, Message::PutAck { op, key: Some(key) }),
                    Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
                }
            }
            Message::DelSupportPerflow { op, key } => match self.logic.del_support_perflow(&key) {
                Ok(_) => self.reply(ctx, Message::OpAck { op }),
                Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
            },
            Message::DelReportPerflow { op, key } => match self.logic.del_report_perflow(&key) {
                Ok(_) => self.reply(ctx, Message::OpAck { op }),
                Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
            },
            Message::PutSupportShared { op, chunk } => {
                // Shared puts MERGE, so a re-sent copy (transfer resume)
                // must be re-acked without re-applying.
                if self.shared_log.already_applied(op) {
                    self.reply(ctx, Message::PutAck { op, key: None });
                    return;
                }
                let snap = self.logic.snapshot_shared();
                match snap.and_then(|s| self.logic.put_support_shared(chunk).map(|()| s)) {
                    Ok(s) => {
                        self.shared_log.record(op, s);
                        self.reply(ctx, Message::PutAck { op, key: None });
                    }
                    Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
                }
            }
            Message::PutReportShared { op, chunk } => {
                if self.shared_log.already_applied(op) {
                    self.reply(ctx, Message::PutAck { op, key: None });
                    return;
                }
                let snap = self.logic.snapshot_shared();
                match snap.and_then(|s| self.logic.put_report_shared(chunk).map(|()| s)) {
                    Ok(s) => {
                        self.shared_log.record(op, s);
                        self.reply(ctx, Message::PutAck { op, key: None });
                    }
                    Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
                }
            }
            Message::DeleteState { op, puts } => {
                // Compensating rollback for an aborted clone/merge:
                // restore the pre-put image and revoke any listed put
                // still in flight.
                let (snap, restored) = self.shared_log.rollback(&puts);
                let result = match snap {
                    Some(s) => self.logic.restore_shared(s).map(|()| restored),
                    None => Ok(0),
                };
                match result {
                    Ok(restored) => self.reply(ctx, Message::DeleteAck { op, restored }),
                    Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
                }
            }
            Message::GetConfig { op, key } => match self.logic.get_config(&key) {
                Ok(pairs) => self.reply(ctx, Message::ConfigValues { op, pairs }),
                Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
            },
            Message::SetConfig { op, key, values } => match self.logic.set_config(&key, values) {
                Ok(()) => self.reply(ctx, Message::OpAck { op }),
                Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
            },
            Message::DelConfig { op, key } => match self.logic.del_config(&key) {
                Ok(()) => self.reply(ctx, Message::OpAck { op }),
                Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
            },
            Message::GetStats { op, key } => {
                let stats = self.logic.stats(&key);
                self.reply(ctx, Message::Stats { op, stats });
            }
            Message::EnableEvents { op, filter } => {
                self.logic.set_introspection(Some(filter));
                self.reply(ctx, Message::OpAck { op });
            }
            Message::DisableEvents { op } => {
                self.logic.set_introspection(None);
                self.reply(ctx, Message::OpAck { op });
            }
            Message::EndSync { op } => {
                self.logic.end_sync(op);
            }
            Message::ChunkRef { op, class, key, hash } => {
                // Negotiate-then-reference, destination side: apply from
                // the content store on a hit, request the body on a miss.
                // Stored bytes are re-hashed before use so a poisoned or
                // corrupted entry degrades to a miss instead of importing
                // wrong state.
                match self.shared_log.store().get(&hash) {
                    Some(data) if openmb_store::content_hash(&data) == hash => {
                        let chunk = openmb_types::StateChunk::new(
                            key,
                            openmb_types::EncryptedChunk::from_wire(data),
                        );
                        let reply = self.apply_classed_put(op, class, chunk);
                        self.reply(ctx, reply);
                    }
                    _ => self.reply(ctx, Message::ChunkNeed { op, hash }),
                }
            }
            Message::ChunkBody { op, class, key, hash, data } => {
                // A streamed body answering a ChunkNeed: verify before
                // caching or applying so a corrupt body surfaces as an
                // error rather than poisoning the store.
                if openmb_store::content_hash(data.as_wire()) != hash {
                    self.reply(
                        ctx,
                        Message::ErrorMsg {
                            op,
                            error: openmb_types::Error::MalformedChunk(
                                "chunk body does not match its content hash".into(),
                            ),
                        },
                    );
                } else {
                    self.shared_log.store().put(data.as_wire());
                    let chunk = openmb_types::StateChunk::new(key, data);
                    let reply = self.apply_classed_put(op, class, chunk);
                    self.reply(ctx, reply);
                }
            }
            other => {
                panic!("MB {} received unexpected message {other:?}", self.label);
            }
        }
        let _ = now;
    }

    /// Apply a content-addressed put under its state class, producing
    /// the same `PutAck { key: Some(..) }` a streamed `Put*Perflow`
    /// earns — the controller's ledger cannot tell (and must not care)
    /// whether a chunk arrived by reference or by body.
    fn apply_classed_put(
        &mut self,
        op: openmb_types::OpId,
        class: openmb_types::wire::ChunkClass,
        chunk: openmb_types::StateChunk,
    ) -> Message {
        let key = chunk.key;
        let result = match class {
            openmb_types::wire::ChunkClass::Support => self.logic.put_support_perflow(chunk),
            openmb_types::wire::ChunkClass::Report => self.logic.put_report_perflow(chunk),
            // `ChunkClass` is non-exhaustive: a class this build does
            // not know cannot be applied correctly, so refuse it.
            other => Err(openmb_types::Error::UnsupportedStateClass(format!("{other:?}"))),
        };
        match result {
            Ok(()) => Message::PutAck { op, key: Some(key) },
            Err(e) => Message::ErrorMsg { op, error: e },
        }
    }

    /// The node's shared-put log, which also owns the destination-side
    /// content store (fault-injection tests poison or pre-warm it).
    pub fn shared_log(&self) -> &SharedPutLog {
        &self.shared_log
    }
}

impl<M: Middlebox + 'static> Node for MbNode<M> {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, frame: Frame) {
        match frame {
            Frame::Data(pkt) => {
                self.queue.push_back(Work::Packet { pkt, arrived: ctx.now() });
            }
            Frame::Control(msg) => {
                // A batched frame is its contents: unpack before
                // dispatch so every inner message records its own
                // `Handled` span (keyed by its own sub-op id) and is
                // costed as its own work item — only the wire framing
                // is shared.
                msg.for_each_unbatched(|msg| {
                    // One `Handled` span per southbound request, keyed by
                    // the wire message's sub-op id: the controller records
                    // the same id as the `sub` of its parent op, so one op
                    // id yields a cross-node timeline.
                    ctx.record(
                        None,
                        msg.op_id().map(|o| o.0),
                        SpanEvent::Handled { msg: msg.kind_name() },
                    );
                    match msg {
                        Message::GetSupportPerflow { op, key } => {
                            ctx.trace(TraceKind::OpStart { op: "getSupportPerflow" });
                            let entries = self.logic.perflow_entries();
                            match self.logic.get_support_perflow(op, &key) {
                                Ok(chunks) => self.queue.push_back(Work::GetBatch {
                                    sub: op,
                                    chunks,
                                    idx: 0,
                                    report: false,
                                    first: true,
                                    scanned_entries: entries,
                                }),
                                Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
                            }
                        }
                        Message::GetReportPerflow { op, key } => {
                            ctx.trace(TraceKind::OpStart { op: "getReportPerflow" });
                            let entries = self.logic.perflow_entries();
                            match self.logic.get_report_perflow(op, &key) {
                                Ok(chunks) => self.queue.push_back(Work::GetBatch {
                                    sub: op,
                                    chunks,
                                    idx: 0,
                                    report: true,
                                    first: true,
                                    scanned_entries: entries,
                                }),
                                Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
                            }
                        }
                        Message::GetSupportShared { op } => {
                            // Shared exports serialize on a background thread:
                            // the result is delivered after the serialization
                            // delay without occupying the packet path (the §8.2
                            // RE result: exporting a 500 MB cache leaves
                            // per-packet latency essentially unchanged).
                            ctx.trace(TraceKind::OpStart { op: "getSupportShared" });
                            match self.logic.get_support_shared(op) {
                                Ok(chunk) => {
                                    let cost = self
                                        .costs()
                                        .shared_cost(chunk.as_ref().map(|c| c.len()).unwrap_or(0));
                                    let token = self.next_shared_token;
                                    self.next_shared_token += 1;
                                    self.pending_shared.insert(token, (op, chunk, false));
                                    ctx.set_timer(cost, token);
                                }
                                Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
                            }
                        }
                        Message::GetReportShared { op } => {
                            ctx.trace(TraceKind::OpStart { op: "getReportShared" });
                            match self.logic.get_report_shared() {
                                Ok(chunk) => {
                                    let cost = self
                                        .costs()
                                        .shared_cost(chunk.as_ref().map(|c| c.len()).unwrap_or(0));
                                    let token = self.next_shared_token;
                                    self.next_shared_token += 1;
                                    self.pending_shared.insert(token, (op, chunk, true));
                                    ctx.set_timer(cost, token);
                                }
                                Err(e) => self.reply(ctx, Message::ErrorMsg { op, error: e }),
                            }
                        }
                        Message::ReprocessPacket { op: _, key: _, packet } => {
                            self.queue.push_back(Work::Replay { pkt: packet });
                        }
                        other => {
                            if matches!(
                                other,
                                Message::PutSupportPerflow { .. }
                                    | Message::PutReportPerflow { .. }
                                    | Message::ChunkRef { .. }
                                    | Message::ChunkBody { .. }
                            ) {
                                ctx.trace(TraceKind::OpStart { op: "put" });
                            }
                            self.queue.push_back(Work::Msg(other));
                        }
                    }
                });
            }
            Frame::Sdn(_) => panic!("SDN frame delivered to middlebox {}", self.label),
        }
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token >= TIMER_SHARED_BASE {
            if let Some((op, chunk, report)) = self.pending_shared.remove(&token) {
                let op_name = if report { "getReportShared" } else { "getSupportShared" };
                ctx.trace(TraceKind::OpEnd { op: op_name });
                match chunk {
                    Some(chunk) => self.reply(ctx, Message::SharedChunk { op, chunk }),
                    None => self.reply(ctx, Message::OpAck { op }),
                }
            }
            return;
        }
        if token != TIMER_WORK {
            return;
        }
        self.busy = false;
        let claimed = std::mem::replace(&mut self.pending_batch, 0);
        if claimed > 1 {
            self.execute_packet_batch(ctx, claimed);
        } else if let Some(w) = self.queue.pop_front() {
            match &w {
                Work::Packet { .. } => self.busy_packet_ns += self.current_service.0,
                Work::Msg(
                    Message::PutSupportPerflow { .. }
                    | Message::PutReportPerflow { .. }
                    | Message::ChunkBody { .. }
                    | Message::PutSupportShared { .. }
                    | Message::PutReportShared { .. },
                ) => self.busy_put_ns += self.current_service.0,
                _ => {}
            }
            self.execute(ctx, w);
        }
        self.pump(ctx);
    }

    fn on_crash(&mut self, ctx: &mut Ctx<'_>) {
        // Volatile runtime state dies with the process: queued work,
        // in-progress service, and background exports all vanish. The
        // middlebox `logic` keeps its tables — modeling state that a
        // restarted instance recovers from its own checkpoint is out of
        // scope; what matters here is that in-flight protocol exchanges
        // stop mid-stream.
        self.queue.clear();
        self.busy = false;
        self.pending_batch = 0;
        self.batch_buf.clear();
        self.batch_arrivals.clear();
        self.current_service = SimDuration::ZERO;
        self.pending_shared.clear();
        let reg = ctx.metrics.registry_mut();
        reg.set_gauge(&self.metric_names.queue_depth, 0.0);
        reg.set_gauge(&self.metric_names.busy, 0.0);
    }

    fn on_restart(&mut self, _ctx: &mut Ctx<'_>) {
        // Nothing to re-arm: the node resumes idle and processes the
        // next frame it receives.
    }

    fn name(&self) -> String {
        format!("mb:{}", self.label)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Per-message processing costs at the controller, driving the Fig 10
/// scalability results (the paper's profile: most controller time is
/// socket reads + synchronization per state chunk).
#[derive(Debug, Clone, Copy)]
pub struct ControllerCosts {
    /// Base handling cost per message.
    pub per_message: SimDuration,
    /// Extra per state chunk brokered (bookkeeping, thread handoff).
    pub per_chunk: SimDuration,
    /// Extra per KiB of chunk payload (the §8.3 profile: "threads are
    /// busy reading from sockets" — byte-proportional work, which is
    /// what state compression reduces).
    pub per_kib: SimDuration,
    /// Extra per event buffered/forwarded.
    pub per_event: SimDuration,
}

impl Default for ControllerCosts {
    fn default() -> Self {
        ControllerCosts {
            per_message: SimDuration::from_micros(8),
            per_chunk: SimDuration::from_micros(10),
            per_kib: SimDuration::from_micros(220),
            per_event: SimDuration::from_micros(12),
        }
    }
}

const TIMER_QUIESCE: u64 = 3;
/// Timer tokens `TIMER_CTRL_WORK_BASE + s` complete the message in
/// service on controller shard `s` — each shard is its own modeled
/// server with its own queue and busy flag, which is where the
/// multi-op speedup comes from in virtual time.
const TIMER_CTRL_WORK_BASE: u64 = 16;
/// App timer tokens are offset to avoid collisions.
pub const APP_TIMER_BASE: u64 = 1 << 32;

/// The controller node: MB controller + SDN routing module + control
/// application (the Figure 1 stack, co-located as in the prototype).
pub struct ControllerNode {
    /// The controller state machine (public for post-run inspection).
    pub core: ControllerCore,
    /// The SDN controller's topology view.
    pub topo: Topology,
    app: Box<dyn ControlApp>,
    /// mb handle -> node id of the MbNode.
    mb_nodes: Vec<NodeId>,
    costs: ControllerCosts,
    /// Per-shard message work queues: the controller models one event
    /// loop (server) per shard, so messages for disjoint ops are
    /// serviced concurrently in virtual time.
    queues: Vec<VecDeque<(MbId, Message)>>,
    busy: Vec<bool>,
    /// Highest depth each shard queue has reached (exported as the
    /// `ctrl.shard<N>.queue_depth_peak` gauge).
    pub queue_depth_peak: Vec<usize>,
    /// Gauge names, formatted once so the hot path never allocates.
    shard_gauges: Vec<String>,
    quiesce_timer_set: bool,
    started: bool,
    /// Completions delivered, with their virtual times (post-run
    /// inspection; experiments read operation latencies from here).
    pub completions: Vec<(SimTime, crate::controller::Completion)>,
    /// MBs reported unreachable (e.g. by the harness on an injected
    /// crash, standing in for a TCP connection reset); drained into
    /// `core.mark_unreachable` on the next event-loop turn.
    pending_unreachable: Vec<MbId>,
    /// MBs reported re-attached; drained into `core.mark_reachable`
    /// (which may emit deferred rollbacks and resume parked transfers)
    /// on the next event-loop turn.
    pending_reachable: Vec<MbId>,
    /// Crash-durable image of `core`, checkpointed after every processed
    /// event when enabled (see [`ControllerNode::enable_journal`]).
    journal: Option<Box<ControllerCore>>,
}

impl ControllerNode {
    /// Build a controller hosting `app`.
    pub fn new(config: ControllerConfig, costs: ControllerCosts, app: Box<dyn ControlApp>) -> Self {
        let core = ControllerCore::new(config);
        let n = core.num_shards();
        ControllerNode {
            core,
            topo: Topology::new(),
            app,
            mb_nodes: Vec::new(),
            costs,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            busy: vec![false; n],
            queue_depth_peak: vec![0; n],
            shard_gauges: (0..n).map(|s| format!("ctrl.shard{s}.queue_depth_peak")).collect(),
            quiesce_timer_set: false,
            started: false,
            completions: Vec::new(),
            pending_unreachable: Vec::new(),
            pending_reachable: Vec::new(),
            journal: None,
        }
    }

    /// Turn on write-ahead journaling of the controller state machine:
    /// `core` is checkpointed (cloned) after every fully-processed event
    /// and an injected crash restores the last checkpoint in `on_crash`,
    /// so choreography progress — per-chunk ack sets, buffered events,
    /// pending rollbacks — survives a controller crash/restart while the
    /// volatile runtime (work queue, in-flight timers and frames) is
    /// lost, exactly the durability split a real controller gets from
    /// journaling transitions to disk. Off by default: an un-journaled
    /// crash also wipes `core` back to the registration-time image, so
    /// every in-flight operation is forgotten (its MB-side sync windows
    /// leak until quiescence timeouts fire — the failure mode the
    /// journal exists to prevent).
    pub fn enable_journal(&mut self) {
        self.journal = Some(Box::new(self.core.clone()));
    }

    fn checkpoint(&mut self) {
        if self.journal.is_some() {
            self.journal = Some(Box::new(self.core.clone()));
        }
    }

    /// Report that `mb`'s connection dropped (the sim-side stand-in for
    /// a southbound TCP reset). The controller aborts the MB's in-flight
    /// operations with [`openmb_types::Error::MbUnreachable`] on its
    /// next event-loop turn and fails fast any new op naming it until
    /// [`ControllerNode::report_reachable`].
    pub fn report_unreachable(&mut self, mb: MbId) {
        self.pending_unreachable.push(mb);
    }

    /// The MB re-attached: accept operations naming it again, send any
    /// shared-state rollbacks deferred while it was down, and resume
    /// transfers parked on its account (all on the controller's next
    /// event-loop turn).
    pub fn report_reachable(&mut self, mb: MbId) {
        self.pending_reachable.push(mb);
    }

    fn drain_unreachable(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending_unreachable.is_empty() && self.pending_reachable.is_empty() {
            return;
        }
        let mut actions = Vec::new();
        let now = ctx.now();
        for mb in std::mem::take(&mut self.pending_unreachable) {
            self.core.mark_unreachable(mb, now, &mut actions);
        }
        for mb in std::mem::take(&mut self.pending_reachable) {
            self.core.mark_reachable(mb, now, &mut actions);
        }
        self.dispatch_actions(ctx, actions);
    }

    /// One point-in-time health capture: the core's view
    /// ([`ControllerCore::health_snapshot`]) plus the per-shard service
    /// queues this node models (depth, peak, busy). `violations` comes
    /// from the harness's invariant monitor (0 when none is attached).
    pub fn health_snapshot(&self, t_ns: u64, violations: u64) -> openmb_obs::HealthSnapshot {
        let mut snap = self.core.health_snapshot(t_ns, violations);
        for (i, s) in snap.shards.iter_mut().enumerate() {
            s.queue_depth = self.queues[i].len() as u64;
            s.queue_depth_peak = self.queue_depth_peak[i] as u64;
            s.busy = self.busy[i];
        }
        snap
    }

    /// Register a middlebox's sim node; returns the MB handle used in
    /// the northbound API.
    pub fn register_mb(&mut self, node: NodeId) -> MbId {
        let id = self.core.register_mb();
        self.mb_nodes.push(node);
        id
    }

    fn node_of(&self, mb: MbId) -> NodeId {
        self.mb_nodes[mb.0 as usize]
    }

    fn mb_of(&self, node: NodeId) -> Option<MbId> {
        self.mb_nodes.iter().position(|n| *n == node).map(|i| MbId(i as u32))
    }

    fn dispatch_actions(&mut self, ctx: &mut Ctx<'_>, actions: Vec<Action>) {
        let mut pending_completions = Vec::new();
        // Coalesce same-destination sends from this action batch into
        // one wire frame each (first-occurrence destination order;
        // per-MB message order preserved). Window refills, resume
        // re-sends, and buffered-event flushes routinely emit runs of
        // messages to one MB — batching turns each run into a single
        // scheduler event.
        let mut sends: Vec<(MbId, Vec<Message>)> = Vec::new();
        for a in actions {
            match a {
                Action::ToMb(mb, msg) => match sends.iter_mut().find(|(m, _)| *m == mb) {
                    Some((_, v)) => v.push(msg),
                    None => sends.push((mb, vec![msg])),
                },
                Action::Notify(c) => pending_completions.push(c),
            }
        }
        for (mb, mut msgs) in sends {
            let node = self.node_of(mb);
            if msgs.len() == 1 {
                ctx.send(node, Frame::Control(msgs.pop().expect("len 1")));
            } else {
                // Attributed to the first message's sub-op so per-op
                // timelines show the flush alongside the put it carries.
                ctx.record(
                    None,
                    msgs[0].op_id().map(|o| o.0),
                    SpanEvent::BatchFlushed { count: msgs.len() as u32 },
                );
                ctx.send(node, Frame::Control(Message::Batch { msgs }));
            }
        }
        for c in pending_completions {
            self.completions.push((ctx.now(), c.clone()));
            let mut actions = Vec::new();
            let mut sdn = Vec::new();
            let mut timers = Vec::new();
            {
                let mut api = Api::new(ApiCtx {
                    core: &mut self.core,
                    topo: &mut self.topo,
                    now: ctx.now(),
                    actions: &mut actions,
                    sdn: &mut sdn,
                    timers: &mut timers,
                });
                self.app.on_completion(&mut api, &c);
            }
            for (sw, msg) in sdn {
                ctx.send(sw, Frame::Sdn(msg));
            }
            for (delay, token) in timers {
                ctx.set_timer(delay, APP_TIMER_BASE + token);
            }
            self.dispatch_actions(ctx, actions);
        }
        self.arm_quiesce(ctx);
    }

    fn arm_quiesce(&mut self, ctx: &mut Ctx<'_>) {
        if !self.quiesce_timer_set && self.core.open_ops() > 0 {
            self.quiesce_timer_set = true;
            let d = SimDuration(self.core.config.quiesce_after.0 / 4 + 1);
            ctx.set_timer(d, TIMER_QUIESCE);
        }
    }

    /// Enqueue one southbound message onto its owning shard's queue.
    fn enqueue(&mut self, ctx: &mut Ctx<'_>, mb: MbId, msg: Message) {
        let s = self.core.shard_of_message(mb, &msg);
        self.queues[s].push_back((mb, msg));
        if self.queues[s].len() > self.queue_depth_peak[s] {
            self.queue_depth_peak[s] = self.queues[s].len();
            ctx.metrics
                .registry_mut()
                .set_gauge(&self.shard_gauges[s], self.queue_depth_peak[s] as f64);
        }
    }

    /// Start service on shard `s` if it is idle and has queued work.
    /// Each shard is an independent modeled server: its own queue, its
    /// own busy flag, its own completion timer.
    fn pump_shard(&mut self, ctx: &mut Ctx<'_>, s: usize) {
        if self.busy[s] {
            return;
        }
        if let Some((_, msg)) = self.queues[s].front() {
            let mut d = self.costs.per_message;
            match msg {
                Message::Chunk { chunk, .. } => {
                    d = d
                        + self.costs.per_chunk
                        + SimDuration(self.costs.per_kib.0 * chunk.data.len() as u64 / 1024);
                }
                Message::SharedChunk { chunk, .. } => {
                    d = d
                        + self.costs.per_chunk
                        + SimDuration(self.costs.per_kib.0 * chunk.len() as u64 / 1024);
                }
                Message::EventMsg { .. } => d = d + self.costs.per_event,
                _ => {}
            }
            self.busy[s] = true;
            ctx.set_timer(d, TIMER_CTRL_WORK_BASE + s as u64);
        }
    }

    fn pump_all(&mut self, ctx: &mut Ctx<'_>) {
        for s in 0..self.queues.len() {
            self.pump_shard(ctx, s);
        }
    }

    /// Run an app-level callback with a fresh [`Api`].
    fn with_api<F: FnOnce(&mut dyn ControlApp, &mut Api<'_>)>(&mut self, ctx: &mut Ctx<'_>, f: F) {
        let mut actions = Vec::new();
        let mut sdn = Vec::new();
        let mut timers = Vec::new();
        {
            let mut api = Api::new(ApiCtx {
                core: &mut self.core,
                topo: &mut self.topo,
                now: ctx.now(),
                actions: &mut actions,
                sdn: &mut sdn,
                timers: &mut timers,
            });
            f(self.app.as_mut(), &mut api);
        }
        for (sw, msg) in sdn {
            ctx.send(sw, Frame::Sdn(msg));
        }
        for (delay, token) in timers {
            ctx.set_timer(delay, APP_TIMER_BASE + token);
        }
        self.dispatch_actions(ctx, actions);
    }
}

impl Node for ControllerNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.started {
            return;
        }
        self.started = true;
        // Adopt the simulation's flight recorder (no-op while disabled):
        // op lifecycles record under the node name "controller".
        if ctx.recorder().is_enabled() && !self.core.recorder().is_enabled() {
            self.core.set_recorder(ctx.recorder().clone());
        }
        self.with_api(ctx, |app, api| app.on_start(api));
        self.checkpoint();
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, from: NodeId, frame: Frame) {
        self.drain_unreachable(ctx);
        match frame {
            Frame::Control(msg) => {
                let mb = self.mb_of(from).unwrap_or(MbId(u32::MAX));
                // A batched frame shares one wire frame but not one
                // work item: flatten it so each inner message is priced
                // individually and routed to its own op's shard queue.
                msg.for_each_unbatched(|m| self.enqueue(ctx, mb, m));
                self.pump_all(ctx);
            }
            Frame::Sdn(SdnMessage::BarrierReply { .. }) => {
                // Barriers are currently fire-and-forget confirmations.
            }
            Frame::Sdn(SdnMessage::PacketIn { packet }) => {
                ctx.trace(TraceKind::PacketDropped { pkt_id: packet.id });
                ctx.metrics.incr("controller.packet_in", 1);
            }
            Frame::Sdn(_) => {}
            Frame::Data(_) => panic!("data packet delivered to controller"),
        }
        self.checkpoint();
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.drain_unreachable(ctx);
        if (TIMER_CTRL_WORK_BASE..TIMER_CTRL_WORK_BASE + self.queues.len() as u64).contains(&token)
        {
            let s = (token - TIMER_CTRL_WORK_BASE) as usize;
            self.busy[s] = false;
            if let Some((mb, msg)) = self.queues[s].pop_front() {
                let mut actions = Vec::new();
                self.core.handle_mb_message(mb, msg, ctx.now(), &mut actions);
                self.dispatch_actions(ctx, actions);
            }
            self.pump_shard(ctx, s);
        } else if token == TIMER_QUIESCE {
            self.quiesce_timer_set = false;
            let mut actions = Vec::new();
            self.core.tick(ctx.now(), &mut actions);
            self.dispatch_actions(ctx, actions);
            self.arm_quiesce(ctx);
        } else if token >= APP_TIMER_BASE {
            let app_token = token - APP_TIMER_BASE;
            self.with_api(ctx, |app, api| app.on_timer(api, app_token));
        }
        self.checkpoint();
    }

    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {
        // Volatile runtime dies with the process either way: queued
        // messages, the in-service ones, and every armed timer (the
        // engine discards timers addressed to a crashed node).
        for q in &mut self.queues {
            q.clear();
        }
        self.busy.iter_mut().for_each(|b| *b = false);
        self.quiesce_timer_set = false;
        self.pending_unreachable.clear();
        self.pending_reachable.clear();
        match &self.journal {
            Some(j) => self.core = (**j).clone(),
            None => {
                // Amnesia: every in-flight operation is forgotten (the
                // leaked MB-side sync windows only close when their
                // quiescence timeouts fire). MB handles index
                // `mb_nodes`, so the fresh core re-registers the same
                // count to keep them valid. The shard count is pinned
                // to the queue fan-out sized at construction — a
                // post-construction `config.shards` mutation must not
                // desynchronize the two.
                let mut config = self.core.config;
                config.shards = self.queues.len() as u32;
                let mut fresh = ControllerCore::new(config);
                for _ in 0..self.mb_nodes.len() {
                    fresh.register_mb();
                }
                // The flight recorder outlives the amnesia: its buffer
                // is shared with the simulation, not part of op state.
                if self.core.recorder().is_enabled() {
                    fresh.set_recorder(self.core.recorder().clone());
                }
                self.core = fresh;
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        // Restart the event loop: the quiescence tick drives journaled
        // in-flight operations to resume (stall detection) or abort
        // (deadline); nothing is queued yet, so pump is a no-op until
        // the next frame lands.
        self.pump_all(ctx);
        self.arm_quiesce(ctx);
    }

    fn name(&self) -> String {
        "controller".to_owned()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A traffic endpoint that records everything it receives, and — when
/// configured as a source — emits self-injected packets onto its access
/// link (so link-level effects like Split/Merge suspension apply to
/// them).
#[derive(Default)]
pub struct Host {
    /// `(arrival time, packet)` in order.
    pub received: Vec<(SimTime, Packet)>,
    /// Where self-injected packets are sent (the access switch).
    forward_to: Option<NodeId>,
    label: String,
}

impl Host {
    pub fn new(label: impl Into<String>) -> Self {
        Host { received: Vec::new(), forward_to: None, label: label.into() }
    }

    /// Configure as a traffic source: frames injected *at this host*
    /// (via `Sim::inject_frame` with `target == from == host`) are sent
    /// out over the link to `next` instead of being recorded.
    pub fn with_forward(mut self, next: NodeId) -> Self {
        self.forward_to = Some(next);
        self
    }

    /// Ids of received packets.
    pub fn received_ids(&self) -> Vec<u64> {
        self.received.iter().map(|(_, p)| p.id).collect()
    }
}

impl Node for Host {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, from: NodeId, frame: Frame) {
        if let Frame::Data(pkt) = frame {
            if from == ctx.id() {
                if let Some(next) = self.forward_to {
                    ctx.send(next, Frame::Data(pkt));
                    return;
                }
            }
            ctx.metrics.incr(&format!("{}.delivered", self.label), 1);
            self.received.push((ctx.now(), pkt));
        }
    }

    fn name(&self) -> String {
        format!("host:{}", self.label)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

//! Shard routing and flowspace conflict detection for the sharded
//! controller.
//!
//! The [`ShardRouter`] answers two questions:
//!
//! 1. **Admission** — which shard should a new operation run on? The
//!    default answer is a deterministic hash of `(flowspace, MB pair)`
//!    modulo the shard count, but an operation that can touch the same
//!    middlebox state as one already in flight is pinned to that
//!    operation's shard instead. Two transfers can collide only when
//!    (a) their MB sets intersect — state lives *on* middleboxes, so
//!    disjoint `{src, dst}` pairs share nothing by construction — and
//!    (b) their flowspaces can select a common canonical flow key
//!    ([`HeaderFieldList::overlaps_bidi`], mirroring the MBs'
//!    `matches_bidi` state selection). Every shard processes its
//!    messages in FIFO order, so two conflicting operations on one
//!    shard observe each other's effects in a single well-defined
//!    order — the same correctness argument as the old single-stream
//!    controller, now holding per shard instead of globally.
//!
//!    Pinning only works when the whole conflict set sits on ONE shard.
//!    A bridging op can conflict with live transfers on two different
//!    shards at once (a wildcard clone touching the endpoints of two
//!    mutually-disjoint moves): joining either shard would leave it
//!    running concurrently with the conflicting op on the other. Such
//!    an op is [`Admission::Defer`]red — reserved on the earliest
//!    conflicting transfer's shard with no southbound traffic, queued
//!    with the conflicting ops on *other* shards as blockers, and
//!    released only once every blocker has fully closed. By then its
//!    remaining conflicts all live on its own shard, where FIFO
//!    ordering serializes them as usual.
//! 2. **Demux** — which shard owns an incoming southbound message?
//!    Shards allocate op ids from disjoint residue classes
//!    (shard `s` of `N` hands out ids `≡ s + 1 (mod N)`), so ownership
//!    of any op-carrying message is `(id - 1) % N`: O(1), no shared
//!    table, nothing to lock on the hot path. Only `Introspection`
//!    events carry no op id; those route via the subscription table
//!    written at `enableEvents` time.
//!
//! The conflict table holds one entry per *live* transfer and is pruned
//! against [`crate::shard::ControllerShard::op_closed`], so a flowspace
//! stays pinned while its op can still emit southbound traffic
//! (including post-quiescence deletes) and not a tick longer.

use openmb_types::wire::{Event, Message};
use openmb_types::{HeaderFieldList, MbId, OpId};

/// Where an incoming southbound message must be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Exactly one shard owns the message.
    Shard(usize),
    /// No shard can be determined (unattributed message, e.g. an
    /// introspection event from an MB with no recorded subscription):
    /// deliver to every shard; non-owners drop it.
    Broadcast,
}

/// The router's verdict on a new transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Run now on `shard` — hash placement, or (`pinned`) the single
    /// shard holding every conflicting live transfer.
    Run { shard: usize, pinned: bool },
    /// The conflict set spans more than one shard, so no placement can
    /// serialize the op against all of it. Reserve the op on `shard`
    /// (the earliest conflicting transfer's) without issuing southbound
    /// traffic, and hold it until every `blockers` entry — the
    /// conflicting ops on *other* shards — has closed.
    Defer { shard: usize, blockers: Vec<(usize, OpId)> },
}

/// One transfer admitted with a cross-shard conflict set, reserved on
/// its shard and awaiting release.
#[derive(Debug, Clone)]
struct DeferredOp {
    op: OpId,
    shard: usize,
    /// `(shard, op)` of every conflicting transfer on another shard at
    /// admission time; entries are removed as they close.
    blockers: Vec<(usize, OpId)>,
}

/// One live transfer the router is keeping pinned to a shard.
#[derive(Debug, Clone)]
struct ActiveOp {
    op: OpId,
    pattern: HeaderFieldList,
    src: MbId,
    dst: MbId,
    shard: usize,
}

impl ActiveOp {
    /// Can a new transfer `(pattern, src, dst)` touch state this one
    /// is moving? Requires both a shared middlebox and a flowspace
    /// intersection — either alone is harmless.
    fn conflicts(&self, pattern: &HeaderFieldList, src: MbId, dst: MbId) -> bool {
        let shares_mb = self.src == src || self.src == dst || self.dst == src || self.dst == dst;
        shares_mb && self.pattern.overlaps_bidi(pattern)
    }
}

/// Deterministic shard assignment with flowspace conflict detection.
///
/// `Clone` so the facade (which journals itself wholesale) can snapshot
/// and restore routing state together with the shards it describes.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    shards: usize,
    active: Vec<ActiveOp>,
    /// Transfers admitted with a cross-shard conflict set, in admission
    /// order, awaiting release.
    deferred: Vec<DeferredOp>,
    /// Shard that ran `enableEvents` per MB — the destination for
    /// op-less introspection events from that MB.
    subs: Vec<(MbId, usize)>,
}

/// FNV-1a, the workspace's standing choice for small deterministic
/// hashes (seeded, platform-independent — `DefaultHasher` is neither
/// guaranteed stable across releases nor seedable).
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable byte encoding of the shard key `(flowspace, MB pair)`.
fn shard_key_bytes(pattern: &HeaderFieldList, src: MbId, dst: MbId) -> Vec<u8> {
    let mut v = Vec::with_capacity(32);
    v.extend_from_slice(&u32::from(pattern.nw_src.addr()).to_be_bytes());
    v.push(pattern.nw_src.len());
    v.extend_from_slice(&u32::from(pattern.nw_dst.addr()).to_be_bytes());
    v.push(pattern.nw_dst.len());
    for p in [pattern.tp_src, pattern.tp_dst] {
        match p {
            Some(p) => {
                v.push(1);
                v.extend_from_slice(&p.to_be_bytes());
            }
            None => v.push(0),
        }
    }
    // Tag byte like the ports: a bare 0xff sentinel for "any" would
    // hash identically to an explicit IP protocol 255.
    match pattern.proto {
        Some(p) => {
            v.push(1);
            v.push(p.number());
        }
        None => v.push(0),
    }
    v.extend_from_slice(&src.0.to_be_bytes());
    v.extend_from_slice(&dst.0.to_be_bytes());
    v
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        ShardRouter {
            shards: shards.max(1),
            active: Vec::new(),
            deferred: Vec::new(),
            subs: Vec::new(),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of transfers currently pinned in the conflict table.
    pub fn active_transfers(&self) -> usize {
        self.active.len()
    }

    /// The hash-only placement for `(flowspace, src, dst)` given a
    /// shard count — where an op goes when nothing conflicts. Pure
    /// arithmetic over the key: needs no router state, so concurrent
    /// embeddings call it without any lock.
    pub fn hash_placement(shards: usize, pattern: &HeaderFieldList, src: MbId, dst: MbId) -> usize {
        // FNV-1a's low bits disperse poorly when only a byte or two of
        // the key varies (a small shard count reduces mod a power of
        // two, i.e. reads only those bits), so fold the high half down
        // before taking the residue.
        let h = fnv1a(shard_key_bytes(pattern, src, dst));
        ((h ^ (h >> 32)) % shards.max(1) as u64) as usize
    }

    /// [`ShardRouter::hash_placement`] over this router's shard count.
    pub fn hash_shard(&self, pattern: &HeaderFieldList, src: MbId, dst: MbId) -> usize {
        Self::hash_placement(self.shards, pattern, src, dst)
    }

    /// Placement for a simple (non-transfer) request against one MB:
    /// hash of the MB pair degenerated to `(mb, mb)` with a wildcard
    /// flowspace. Simple requests are self-contained and idempotent, so
    /// they need no conflict entry — and, being pure arithmetic, no
    /// router lock.
    pub fn place_simple(shards: usize, mb: MbId) -> usize {
        Self::hash_placement(shards, &HeaderFieldList::any(), mb, mb)
    }

    /// [`ShardRouter::place_simple`] over this router's shard count.
    pub fn route_simple(&self, mb: MbId) -> usize {
        Self::place_simple(self.shards, mb)
    }

    /// Admit a transfer. With no conflicting live transfer the hash
    /// decides and disjoint ops spread across shards. When every
    /// conflicting transfer (shares a middlebox *and* overlaps the
    /// flowspace, direction-insensitively) sits on one shard, the op is
    /// pinned there, where per-shard FIFO ordering serializes them. But
    /// when the conflict set spans several shards no placement is safe,
    /// and the verdict is [`Admission::Defer`]: reserve the op on the
    /// earliest-admitted conflicting transfer's shard and hold it until
    /// the conflicting ops on the *other* shards close.
    pub fn admit(&self, pattern: &HeaderFieldList, src: MbId, dst: MbId) -> Admission {
        let mut conflicts = self.active.iter().filter(|a| a.conflicts(pattern, src, dst));
        let Some(first) = conflicts.next() else {
            return Admission::Run { shard: self.hash_shard(pattern, src, dst), pinned: false };
        };
        let shard = first.shard;
        let blockers: Vec<(usize, OpId)> =
            conflicts.filter(|a| a.shard != shard).map(|a| (a.shard, a.op)).collect();
        if blockers.is_empty() {
            Admission::Run { shard, pinned: true }
        } else {
            Admission::Defer { shard, blockers }
        }
    }

    /// Admit a whole *chain* of transfers atomically: the verdict is
    /// computed over the union of every hop's conflict set, so the
    /// chain either runs with all hops pinned to ONE shard's FIFO or
    /// defers until every cross-shard blocker closes. Registering all
    /// hops before any hop's traffic is issued (see
    /// [`ShardRouter::register_chain`]) is what makes two chains with
    /// reversed hop orders deadlock-free: the later admission sees the
    /// earlier chain's full footprint at once and serializes behind it,
    /// instead of the two acquiring hops incrementally in opposite
    /// orders. With no conflicts anywhere, placement is the hash of the
    /// first hop's key.
    pub fn admit_chain(&self, hops: &[(HeaderFieldList, MbId, MbId)]) -> Admission {
        let mut first: Option<usize> = None;
        let mut blockers: Vec<(usize, OpId)> = Vec::new();
        for a in &self.active {
            if hops.iter().any(|(p, s, d)| a.conflicts(p, *s, *d)) {
                match first {
                    None => first = Some(a.shard),
                    Some(shard) if a.shard != shard => {
                        if !blockers.contains(&(a.shard, a.op)) {
                            blockers.push((a.shard, a.op));
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        match first {
            None => {
                let (p, s, d) = &hops[0];
                Admission::Run { shard: self.hash_shard(p, *s, *d), pinned: false }
            }
            Some(shard) if blockers.is_empty() => Admission::Run { shard, pinned: true },
            Some(shard) => Admission::Defer { shard, blockers },
        }
    }

    /// Record every hop of an admitted chain in the conflict table
    /// under the chain's own id, all on `shard`. Later single-pair or
    /// chain admissions that can touch any hop's state then serialize
    /// behind the chain (pin to `shard`, or defer blocked on the chain
    /// id) until the *whole* chain closes — hop completions in the
    /// middle of the chain release nothing.
    pub fn register_chain(
        &mut self,
        chain: OpId,
        hops: &[(HeaderFieldList, MbId, MbId)],
        shard: usize,
    ) {
        for (pattern, src, dst) in hops {
            self.register_transfer(chain, *pattern, *src, *dst, shard);
        }
    }

    /// Record an admitted transfer in the conflict table.
    pub fn register_transfer(
        &mut self,
        op: OpId,
        pattern: HeaderFieldList,
        src: MbId,
        dst: MbId,
        shard: usize,
    ) {
        debug_assert!(shard < self.shards);
        self.active.push(ActiveOp { op, pattern, src, dst, shard });
    }

    /// Drop conflict entries whose op has fully closed.
    /// `closed(shard, op)` is answered by the owning shard
    /// ([`crate::shard::ControllerShard::op_closed`]).
    pub fn prune(&mut self, mut closed: impl FnMut(usize, OpId) -> bool) {
        self.active.retain(|a| !closed(a.shard, a.op));
    }

    /// Queue a transfer reserved under an [`Admission::Defer`] verdict.
    pub fn push_deferred(&mut self, op: OpId, shard: usize, blockers: Vec<(usize, OpId)>) {
        debug_assert!(!blockers.is_empty(), "a deferral with no blockers should have run");
        self.deferred.push(DeferredOp { op, shard, blockers });
    }

    /// Any transfer still held back by cross-shard blockers? Cheap: the
    /// release sweep's guard on every hot path.
    pub fn has_deferred(&self) -> bool {
        !self.deferred.is_empty()
    }

    /// Number of transfers currently held back (diagnostics, tests).
    pub fn deferred_transfers(&self) -> usize {
        self.deferred.len()
    }

    /// Sweep the deferred queue in admission order: entries whose own
    /// op closed while held (deadline abort, endpoint loss) are
    /// dropped; entries whose blockers have all closed are removed and
    /// returned as `(shard, op)` for the facade to release, in FIFO
    /// order. `closed` may answer conservatively (`false` when it
    /// cannot tell) — a blocker is then simply re-checked on the next
    /// sweep.
    pub fn drain_releasable(
        &mut self,
        mut closed: impl FnMut(usize, OpId) -> bool,
    ) -> Vec<(usize, OpId)> {
        if self.deferred.is_empty() {
            return Vec::new();
        }
        let mut ready = Vec::new();
        self.deferred.retain_mut(|d| {
            if closed(d.shard, d.op) {
                return false;
            }
            d.blockers.retain(|&(shard, op)| !closed(shard, op));
            if d.blockers.is_empty() {
                ready.push((d.shard, d.op));
                false
            } else {
                true
            }
        });
        ready
    }

    /// Record which shard owns `mb`'s introspection subscription.
    pub fn note_subscription(&mut self, mb: MbId, shard: usize) {
        if let Some(e) = self.subs.iter_mut().find(|(m, _)| *m == mb) {
            e.1 = shard;
        } else {
            self.subs.push((mb, shard));
        }
    }

    /// Owning shard of an op id given a shard count, from its residue
    /// class. `OpId(0)` is never allocated — callers use it as a "no
    /// particular op" sentinel for aggregate stats — and maps to
    /// shard 0. Pure arithmetic: no router state, no lock.
    pub fn owner_of_op(shards: usize, op: OpId) -> usize {
        (op.0.saturating_sub(1) % shards.max(1) as u64) as usize
    }

    /// [`ShardRouter::owner_of_op`] over this router's shard count.
    pub fn shard_of_op(&self, op: OpId) -> usize {
        Self::owner_of_op(self.shards, op)
    }

    /// Residue-arithmetic demux for op-carrying messages: resolves
    /// every message that names an op (acks, chunks, reprocess events)
    /// from the shard count alone — no router state, so concurrent
    /// embeddings route the southbound hot path without any lock.
    /// `None` for the rare message that needs the subscription table.
    pub fn route_by_op(shards: usize, msg: &Message) -> Option<Route> {
        if let Some(op) = msg.op_id() {
            return Some(Route::Shard(Self::owner_of_op(shards, op)));
        }
        match msg {
            Message::EventMsg { event: Event::Reprocess { op, .. } } => {
                Some(Route::Shard(Self::owner_of_op(shards, *op)))
            }
            _ => None,
        }
    }

    /// Demux an incoming southbound message to its owning shard.
    pub fn route_message(&self, from: MbId, msg: &Message) -> Route {
        if let Some(route) = Self::route_by_op(self.shards, msg) {
            return route;
        }
        match msg {
            Message::EventMsg { event: Event::Introspection { .. } } => self
                .subs
                .iter()
                .find(|(m, _)| *m == from)
                .map(|&(_, s)| Route::Shard(s))
                .unwrap_or(Route::Broadcast),
            // A Batch is unpacked by the facade before routing; seeing
            // one here means an embedding skipped the unbatch helper.
            // Broadcast stays correct — a shard silently drops messages
            // whose sub-op it does not own — it just costs N deliveries.
            _ => Route::Broadcast,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmb_types::IpPrefix;
    use std::net::Ipv4Addr;

    fn subnet(a: u8, b: u8, len: u8) -> HeaderFieldList {
        HeaderFieldList::from_src_subnet(IpPrefix::new(Ipv4Addr::new(a, b, 0, 0), len))
    }

    /// Two-sided subnet pattern (`src ∈ net ∧ dst ∈ net`): flows that
    /// stay inside one subnet, the shape tenant flowspaces take. Unlike
    /// one-sided patterns these are bidi-disjoint across disjoint
    /// subnets (no wildcard side for the reversal to slip through).
    fn within(a: u8, b: u8, len: u8) -> HeaderFieldList {
        let p = IpPrefix::new(Ipv4Addr::new(a, b, 0, 0), len);
        HeaderFieldList { nw_src: p, nw_dst: p, ..HeaderFieldList::any() }
    }

    /// Admit expecting an immediate run; returns the placed shard.
    fn run_shard(r: &ShardRouter, pattern: &HeaderFieldList, src: MbId, dst: MbId) -> usize {
        match r.admit(pattern, src, dst) {
            Admission::Run { shard, .. } => shard,
            d @ Admission::Defer { .. } => panic!("expected Run, got {d:?}"),
        }
    }

    #[test]
    fn overlapping_flowspaces_serialize_onto_one_shard() {
        let mut r = ShardRouter::new(4);
        let wide = subnet(10, 0, 8);
        let s0 = run_shard(&r, &wide, MbId(0), MbId(1));
        r.register_transfer(OpId(1 + s0 as u64), wide, MbId(0), MbId(1), s0);
        // A /24 inside the live /8, on a pair sharing MB 1: must join
        // its shard even though its own hash would place it elsewhere.
        let narrow = subnet(10, 7, 24);
        assert_eq!(r.admit(&narrow, MbId(1), MbId(2)), Admission::Run { shard: s0, pinned: true });
        // Identical flowspace touching the live op's source MB: same.
        assert_eq!(r.admit(&wide, MbId(3), MbId(0)), Admission::Run { shard: s0, pinned: true });
    }

    #[test]
    fn disjoint_mb_pairs_never_conflict() {
        let mut r = ShardRouter::new(4);
        let wide = subnet(10, 0, 8);
        let s0 = run_shard(&r, &wide, MbId(0), MbId(1));
        r.register_transfer(OpId(1 + s0 as u64), wide, MbId(0), MbId(1), s0);
        // The same flowspace on a disjoint MB pair shares no state —
        // state lives on middleboxes — so placement is pure hash.
        assert_eq!(
            r.admit(&wide, MbId(2), MbId(3)),
            Admission::Run { shard: r.hash_shard(&wide, MbId(2), MbId(3)), pinned: false }
        );
    }

    #[test]
    fn disjoint_flowspaces_spread_by_hash() {
        let mut r = ShardRouter::new(4);
        let a = within(10, 0, 16);
        let b = within(10, 1, 16); // adjacent /16 — disjoint, not overlapping
        let sa = run_shard(&r, &a, MbId(0), MbId(1));
        r.register_transfer(OpId(1 + sa as u64), a, MbId(0), MbId(1), sa);
        // Same MB pair, disjoint flow ranges ⇒ the conflict scan must
        // not capture it: placement is pure hash.
        assert_eq!(
            r.admit(&b, MbId(0), MbId(1)),
            Admission::Run { shard: r.hash_shard(&b, MbId(0), MbId(1)), pinned: false }
        );
        // And at least these four standard bench subnets do spread.
        let shards: std::collections::HashSet<usize> = (0u8..4)
            .map(|i| {
                r.hash_shard(&within(10, i, 16), MbId(2 * u32::from(i)), MbId(2 * u32::from(i) + 1))
            })
            .collect();
        assert!(shards.len() > 1, "hash placement must actually spread: {shards:?}");
    }

    #[test]
    fn reversed_direction_counts_as_overlap() {
        let mut r = ShardRouter::new(4);
        let fwd = HeaderFieldList {
            nw_src: IpPrefix::new(Ipv4Addr::new(10, 9, 0, 0), 16),
            ..HeaderFieldList::any()
        };
        let s = run_shard(&r, &fwd, MbId(0), MbId(1));
        r.register_transfer(OpId(1 + s as u64), fwd, MbId(0), MbId(1), s);
        // State is keyed by canonical flow key, so a pattern naming the
        // same subnet as *destination* can select the same chunks on a
        // shared middlebox.
        let rev = HeaderFieldList {
            nw_dst: IpPrefix::new(Ipv4Addr::new(10, 9, 0, 0), 16),
            nw_src: IpPrefix::new(Ipv4Addr::new(172, 16, 0, 0), 12),
            ..HeaderFieldList::any()
        };
        assert_eq!(r.admit(&rev, MbId(1), MbId(2)), Admission::Run { shard: s, pinned: true });
    }

    #[test]
    fn wraparound_and_adjacent_ranges_do_not_conflict() {
        let mut r = ShardRouter::new(4);
        // Top-of-address-space /24: adjacent to 0.0.0.0/24 only through
        // the wrap, which prefixes never cross. Same MB pair, so only
        // the flowspaces keep these apart.
        let top = {
            let p = IpPrefix::new(Ipv4Addr::new(255, 255, 255, 0), 24);
            HeaderFieldList { nw_src: p, nw_dst: p, ..HeaderFieldList::any() }
        };
        let bottom = {
            let p = IpPrefix::new(Ipv4Addr::new(0, 0, 0, 0), 24);
            HeaderFieldList { nw_src: p, nw_dst: p, ..HeaderFieldList::any() }
        };
        let st = run_shard(&r, &top, MbId(0), MbId(1));
        r.register_transfer(OpId(1 + st as u64), top, MbId(0), MbId(1), st);
        assert_eq!(
            r.admit(&bottom, MbId(0), MbId(1)),
            Admission::Run { shard: r.hash_shard(&bottom, MbId(0), MbId(1)), pinned: false },
            "wrap-adjacent prefixes are disjoint: hash placement, not capture"
        );
        // But 0.0.0.0/0 on a pair sharing MB 1 overlaps both ends of
        // the space.
        let any = HeaderFieldList::any();
        assert_eq!(r.admit(&any, MbId(1), MbId(5)), Admission::Run { shard: st, pinned: true });
    }

    #[test]
    fn prune_releases_closed_transfers() {
        let mut r = ShardRouter::new(4);
        let wide = subnet(10, 0, 8);
        let s = run_shard(&r, &wide, MbId(0), MbId(1));
        r.register_transfer(OpId(1 + s as u64), wide, MbId(0), MbId(1), s);
        assert_eq!(r.active_transfers(), 1);
        r.prune(|_, _| true);
        assert_eq!(r.active_transfers(), 0);
        // With the table empty the overlapping /24 on a shared MB is
        // free to take its hash shard.
        let narrow = subnet(10, 7, 24);
        assert_eq!(
            r.admit(&narrow, MbId(1), MbId(2)),
            Admission::Run { shard: r.hash_shard(&narrow, MbId(1), MbId(2)), pinned: false }
        );
    }

    #[test]
    fn bridging_op_spanning_two_shards_defers() {
        let mut r = ShardRouter::new(4);
        // Two live transfers with disjoint flowspaces and disjoint MB
        // pairs, planted on different shards by hand.
        r.register_transfer(OpId(1), within(10, 0, 16), MbId(0), MbId(1), 0);
        r.register_transfer(OpId(2), within(10, 1, 16), MbId(2), MbId(3), 1);
        // A wildcard clone bridging MB 1 and MB 2 conflicts with both:
        // no single shard can serialize it, so it must defer, reserved
        // on the earliest conflicting transfer's shard and blocked on
        // the other.
        let any = HeaderFieldList::any();
        assert_eq!(
            r.admit(&any, MbId(1), MbId(2)),
            Admission::Defer { shard: 0, blockers: vec![(1, OpId(2))] }
        );
        // Once the shard-1 move closes (pruned), the same admission
        // collapses to a plain pin on shard 0.
        r.prune(|shard, _| shard == 1);
        assert_eq!(r.admit(&any, MbId(1), MbId(2)), Admission::Run { shard: 0, pinned: true });
    }

    #[test]
    fn drain_releasable_frees_ops_as_blockers_close() {
        let mut r = ShardRouter::new(4);
        r.push_deferred(OpId(5), 0, vec![(1, OpId(2)), (2, OpId(3))]);
        r.push_deferred(OpId(9), 2, vec![(1, OpId(2))]);
        assert!(r.has_deferred());
        // Nothing closed yet: both held, no releases.
        assert!(r.drain_releasable(|_, _| false).is_empty());
        assert_eq!(r.deferred_transfers(), 2);
        // The shard-1 blocker closes: the second entry's whole blocker
        // set is gone, the first still waits on shard 2.
        assert_eq!(r.drain_releasable(|shard, _| shard == 1), vec![(2, OpId(9))]);
        assert_eq!(r.deferred_transfers(), 1);
        // The remaining blocker closes too.
        assert_eq!(r.drain_releasable(|_, _| true), Vec::new());
        // ^ empty because `closed` answered true for the deferred op
        // itself as well — an op that died while held (deadline abort)
        // is swept, never released.
        assert!(!r.has_deferred());
    }

    #[test]
    fn drain_releasable_releases_in_admission_order() {
        let mut r = ShardRouter::new(2);
        r.push_deferred(OpId(3), 0, vec![(1, OpId(2))]);
        r.push_deferred(OpId(5), 1, vec![(0, OpId(1))]);
        let ready = r.drain_releasable(|_, op| op == OpId(1) || op == OpId(2));
        assert_eq!(ready, vec![(0, OpId(3)), (1, OpId(5))]);
    }

    #[test]
    fn drain_releasable_keeps_fifo_across_partial_releases() {
        // Three cross-shard deferrals queued in admission order, whose
        // blockers close at different sweeps — including a sweep where
        // a LATER entry becomes releasable while an earlier one still
        // waits. FIFO applies within each sweep's ready set; an entry
        // held back never jumps ahead of ops released before it.
        let mut r = ShardRouter::new(4);
        r.push_deferred(OpId(10), 0, vec![(1, OpId(2)), (2, OpId(3))]);
        r.push_deferred(OpId(11), 1, vec![(2, OpId(3))]);
        r.push_deferred(OpId(12), 2, vec![(3, OpId(4)), (1, OpId(2))]);
        assert_eq!(r.deferred_transfers(), 3);
        // Sweep 1: only blocker 4 closed — nobody frees, but entry 12's
        // blocker set shrinks to the shared blocker 2.
        assert!(r.drain_releasable(|_, op| op == OpId(4)).is_empty());
        assert_eq!(r.deferred_transfers(), 3);
        // Sweep 2: blocker 3 closes. Entry 11 is the only one fully
        // unblocked; 10 (queued BEFORE it) still waits on blocker 2
        // and must not ride along.
        assert_eq!(r.drain_releasable(|_, op| op == OpId(3)), vec![(1, OpId(11))]);
        assert_eq!(r.deferred_transfers(), 2);
        // Sweep 3: blocker 2 closes, unblocking 10 and 12 together —
        // released in their original admission order.
        assert_eq!(r.drain_releasable(|_, op| op == OpId(2)), vec![(0, OpId(10)), (2, OpId(12))]);
        assert!(!r.has_deferred());
    }

    #[test]
    fn wildcard_proto_is_tagged_not_a_sentinel_byte() {
        use openmb_types::Proto;
        let any_key = shard_key_bytes(&HeaderFieldList::any(), MbId(0), MbId(1));
        let tcp = HeaderFieldList { proto: Some(Proto::Tcp), ..HeaderFieldList::any() };
        let tcp_key = shard_key_bytes(&tcp, MbId(0), MbId(1));
        assert_ne!(any_key, tcp_key);
        // Proto sits after nw_src(5) + nw_dst(5) + two untagged "any"
        // ports (1 byte each): a 0 tag for wildcard, `[1, number]` for
        // concrete — never a bare 0xff sentinel, which would collide
        // with IP protocol 255 if it ever became representable.
        assert_eq!(any_key[12], 0);
        assert_eq!(&tcp_key[12..14], [1, Proto::Tcp.number()]);
    }

    #[test]
    fn op_residue_demux_is_total_and_stable() {
        let r = ShardRouter::new(4);
        for id in 1..=64u64 {
            assert_eq!(r.shard_of_op(OpId(id)), ((id - 1) % 4) as usize);
        }
        let single = ShardRouter::new(1);
        for id in 1..=8u64 {
            assert_eq!(single.shard_of_op(OpId(id)), 0);
        }
    }

    #[test]
    fn messages_route_by_op_residue() {
        let r = ShardRouter::new(4);
        assert_eq!(r.route_message(MbId(0), &Message::OpAck { op: OpId(3) }), Route::Shard(2));
        assert_eq!(
            r.route_message(MbId(0), &Message::PutAck { op: OpId(5), key: None }),
            Route::Shard(0)
        );
    }

    #[test]
    fn introspection_routes_by_subscription_owner() {
        use openmb_types::{FlowKey, Packet};
        let mut r = ShardRouter::new(4);
        r.note_subscription(MbId(7), 2);
        let key = FlowKey::tcp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2);
        let intro =
            Message::EventMsg { event: Event::Introspection { code: 1, key, values: Vec::new() } };
        assert_eq!(r.route_message(MbId(7), &intro), Route::Shard(2));
        assert_eq!(r.route_message(MbId(8), &intro), Route::Broadcast);
        // Reprocess events carry the get sub-op: residue routing.
        let rep = Message::EventMsg {
            event: Event::Reprocess { op: OpId(6), key, packet: Packet::new(1, key, vec![]) },
        };
        assert_eq!(r.route_message(MbId(7), &rep), Route::Shard(1));
    }
}

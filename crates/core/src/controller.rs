//! The MB controller (§5): the broker between northbound control
//! operations and the southbound protocol.
//!
//! [`ControllerCore`] is a pure state machine: northbound calls and
//! southbound messages go in, [`Action`]s come out. It implements the
//! Figure 5 choreography for `moveInternal` — issue both per-flow gets
//! to the source, forward streamed chunks as puts to the destination,
//! track per-put ACKs, buffer reprocess events "until the DstMB has
//! ACK'd the put for the piece of per-flow state to which the event
//! applies", and, after a quiescence window with no events (the routing
//! change has taken effect), delete the moved state at the source — plus
//! the analogous sequences for `cloneSupport` and `mergeInternal`
//! (shared state; no delete).
//!
//! Keeping the core pure lets the same controller run embedded in the
//! discrete-event simulator (`nodes::ControllerNode`) and over real TCP
//! transports (`tcp`), exactly as the paper's Floodlight module serves
//! both their testbed and their dummy-MB scalability rig.

use std::collections::HashMap;

use openmb_simnet::{SimDuration, SimTime};
use openmb_types::wire::{Event, EventFilter, Message};
use openmb_types::{
    ConfigValue, FlowKey, HeaderFieldList, HierarchicalKey, MbId, OpId, Packet, StateStats,
};

/// An effect the embedding must carry out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send a protocol message to a middlebox.
    ToMb(MbId, Message),
    /// Deliver a completion/notification to the control application.
    Notify(Completion),
}

/// Northbound completions and notifications delivered to control
/// applications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion {
    /// `readConfig` finished.
    Config { op: OpId, pairs: Vec<(HierarchicalKey, Vec<ConfigValue>)> },
    /// `writeConfig`/`delConfig`/`enableEvents` acknowledged.
    Ack { op: OpId },
    /// `stats` finished.
    Stats { op: OpId, stats: StateStats },
    /// `moveInternal` finished: every put has been ACKed (events may
    /// continue to be forwarded afterwards).
    MoveComplete { op: OpId, chunks_moved: usize },
    /// `cloneSupport` finished.
    CloneComplete { op: OpId },
    /// `mergeInternal` finished.
    MergeComplete { op: OpId },
    /// An operation failed.
    Failed { op: OpId, error: String },
    /// An introspection event arrived from a middlebox the application
    /// subscribed to.
    MbEvent { mb: MbId, code: u32, key: FlowKey, values: Vec<(String, String)> },
}

impl Completion {
    /// The operation this completion concludes (`None` for MbEvent).
    pub fn op(&self) -> Option<OpId> {
        match self {
            Completion::Config { op, .. }
            | Completion::Ack { op }
            | Completion::Stats { op, .. }
            | Completion::MoveComplete { op, .. }
            | Completion::CloneComplete { op }
            | Completion::MergeComplete { op }
            | Completion::Failed { op, .. } => Some(*op),
            Completion::MbEvent { .. } => None,
        }
    }
}

/// Which southbound exchange a sub-operation id belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SubRole {
    GetSupport,
    GetReport,
    PutSupport { key: HeaderFieldList },
    PutReport { key: HeaderFieldList },
    GetSharedSupport,
    GetSharedReport,
    PutSharedSupport,
    PutSharedReport,
    DelSupport,
    DelReport,
    Simple,
}

/// A reprocess event parked until its chunk's put is ACKed.
#[derive(Debug, Clone)]
struct BufferedEvent {
    key: FlowKey,
    packet: Packet,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    ReadConfig,
    WriteConfig,
    DelConfig,
    Stats,
    EnableEvents,
    Move,
    Clone,
    Merge,
}

/// Per-operation progress.
struct OpState {
    kind: OpKind,
    src: MbId,
    dst: MbId,
    /// For moves: the pattern being moved.
    pattern: HeaderFieldList,
    /// Outstanding get streams (2 for move: support+report; 1-2 for
    /// clone/merge).
    gets_outstanding: u32,
    /// Outstanding puts (sub-op ids).
    puts_outstanding: u32,
    /// Chunk keys whose puts have been ACKed.
    acked_keys: Vec<HeaderFieldList>,
    /// Chunk keys whose puts are in flight.
    pending_keys: Vec<HeaderFieldList>,
    /// The get sub-operations issued to the source. The source MB tags
    /// its moved/cloned marks (and its reprocess events) with these ids,
    /// so closing the sync window means sending EndSync for each.
    get_subs: Vec<OpId>,
    /// Events waiting for their chunk's put ACK.
    buffered: Vec<BufferedEvent>,
    /// Total chunks transferred.
    chunks: usize,
    /// Completion already reported?
    completed: bool,
    /// Virtual time of the most recent event (or completion), for the
    /// quiescence timer.
    last_activity: SimTime,
    /// Quiescence already executed (del/EndSync sent)?
    quiesced: bool,
    /// Statistics: events forwarded under this op.
    pub events_forwarded: u64,
}

/// Tunable controller parameters.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// How long after the last reprocess event the controller assumes
    /// the routing change has taken effect (paper: "a fixed amount of
    /// time (e.g., 5 seconds)").
    pub quiesce_after: SimDuration,
    /// Compress state transfers between controller and MBs (§8.3).
    /// Affects the modeled wire size of Chunk/Put messages via the
    /// embedding; the core only records the setting.
    pub compress_transfers: bool,
    /// Buffer reprocess events until the matching put is ACKed (Fig 5).
    /// Disabling this is an ABLATION ONLY: events forwarded before their
    /// chunk's put land first and are overwritten by the put — the exact
    /// §4.2.1 atomicity violation the design exists to prevent. The
    /// `ablations` harness measures the resulting lost updates.
    pub buffer_events: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            quiesce_after: SimDuration::from_millis(500),
            compress_transfers: false,
            buffer_events: true,
        }
    }
}

/// The MB controller state machine.
pub struct ControllerCore {
    /// Registered middleboxes (application-visible handles).
    mbs: Vec<MbId>,
    next_op: u64,
    ops: HashMap<OpId, OpState>,
    sub_ops: HashMap<OpId, (OpId, SubRole)>,
    /// Introspection subscription per MB (controller-side record).
    subscriptions: HashMap<MbId, EventFilter>,
    pub config: ControllerConfig,
    /// Counters for experiments (messages brokered, events buffered...).
    pub messages_handled: u64,
    pub events_buffered_peak: usize,
}

impl ControllerCore {
    /// A controller with the given tunables.
    pub fn new(config: ControllerConfig) -> Self {
        ControllerCore {
            mbs: Vec::new(),
            next_op: 1,
            ops: HashMap::new(),
            sub_ops: HashMap::new(),
            subscriptions: HashMap::new(),
            config,
            messages_handled: 0,
            events_buffered_peak: 0,
        }
    }

    /// Register a middlebox; returns its handle.
    pub fn register_mb(&mut self) -> MbId {
        let id = MbId(self.mbs.len() as u32);
        self.mbs.push(id);
        id
    }

    fn alloc_op(&mut self) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        id
    }

    fn alloc_sub(&mut self, parent: OpId, role: SubRole) -> OpId {
        let id = self.alloc_op();
        self.sub_ops.insert(id, (parent, role));
        id
    }

    // ------------------------------------------------------------------
    // Northbound API (§5)
    // ------------------------------------------------------------------

    /// `readConfig(SrcMB, HierarchicalKey)`.
    pub fn read_config(
        &mut self,
        src: MbId,
        key: HierarchicalKey,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        self.ops.insert(op, OpState::new(OpKind::ReadConfig, src, src, now));
        let sub = self.alloc_sub(op, SubRole::Simple);
        out.push(Action::ToMb(src, Message::GetConfig { op: sub, key }));
        op
    }

    /// `writeConfig(DstMB, HierarchicalKey, values)`.
    pub fn write_config(
        &mut self,
        dst: MbId,
        key: HierarchicalKey,
        values: Vec<ConfigValue>,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        self.ops.insert(op, OpState::new(OpKind::WriteConfig, dst, dst, now));
        let sub = self.alloc_sub(op, SubRole::Simple);
        out.push(Action::ToMb(dst, Message::SetConfig { op: sub, key, values }));
        op
    }

    /// `delConfig` — a composition convenience over the southbound API.
    pub fn del_config(
        &mut self,
        dst: MbId,
        key: HierarchicalKey,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        self.ops.insert(op, OpState::new(OpKind::DelConfig, dst, dst, now));
        let sub = self.alloc_sub(op, SubRole::Simple);
        out.push(Action::ToMb(dst, Message::DelConfig { op: sub, key }));
        op
    }

    /// `stats(SrcMB, HeaderFieldList)`.
    pub fn stats(
        &mut self,
        src: MbId,
        key: HeaderFieldList,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        self.ops.insert(op, OpState::new(OpKind::Stats, src, src, now));
        let sub = self.alloc_sub(op, SubRole::Simple);
        out.push(Action::ToMb(src, Message::GetStats { op: sub, key }));
        op
    }

    /// Subscribe the application to introspection events from `mb`.
    pub fn enable_events(
        &mut self,
        mb: MbId,
        filter: EventFilter,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        self.ops.insert(op, OpState::new(OpKind::EnableEvents, mb, mb, now));
        self.subscriptions.insert(mb, filter.clone());
        let sub = self.alloc_sub(op, SubRole::Simple);
        out.push(Action::ToMb(mb, Message::EnableEvents { op: sub, filter }));
        op
    }

    /// `moveInternal(SrcMB, DstMB, HeaderFieldList)` — Figure 5.
    pub fn move_internal(
        &mut self,
        src: MbId,
        dst: MbId,
        key: HeaderFieldList,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        let mut st = OpState::new(OpKind::Move, src, dst, now);
        st.pattern = key;
        st.gets_outstanding = 2;
        self.ops.insert(op, st);
        let gs = self.alloc_sub(op, SubRole::GetSupport);
        let gr = self.alloc_sub(op, SubRole::GetReport);
        if let Some(st) = self.ops.get_mut(&op) {
            st.get_subs.extend([gs, gr]);
        }
        out.push(Action::ToMb(src, Message::GetSupportPerflow { op: gs, key }));
        out.push(Action::ToMb(src, Message::GetReportPerflow { op: gr, key }));
        op
    }

    /// `cloneSupport(SrcMB, DstMB)` — shared supporting state only.
    pub fn clone_support(
        &mut self,
        src: MbId,
        dst: MbId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        let mut st = OpState::new(OpKind::Clone, src, dst, now);
        st.gets_outstanding = 1;
        self.ops.insert(op, st);
        let g = self.alloc_sub(op, SubRole::GetSharedSupport);
        if let Some(st) = self.ops.get_mut(&op) {
            st.get_subs.push(g);
        }
        out.push(Action::ToMb(src, Message::GetSupportShared { op: g }));
        op
    }

    /// `mergeInternal(SrcMB, DstMB)` — shared supporting + reporting.
    pub fn merge_internal(
        &mut self,
        src: MbId,
        dst: MbId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        let mut st = OpState::new(OpKind::Merge, src, dst, now);
        st.gets_outstanding = 2;
        self.ops.insert(op, st);
        let gs = self.alloc_sub(op, SubRole::GetSharedSupport);
        let gr = self.alloc_sub(op, SubRole::GetSharedReport);
        if let Some(st) = self.ops.get_mut(&op) {
            st.get_subs.extend([gs, gr]);
        }
        out.push(Action::ToMb(src, Message::GetSupportShared { op: gs }));
        out.push(Action::ToMb(src, Message::GetReportShared { op: gr }));
        op
    }

    /// Explicitly finish a move/clone/merge transaction now: send the
    /// EndSync (and, for moves, the deletes) without waiting for the
    /// quiescence timer. Control applications use this when *they* know
    /// the routing transition is complete — e.g. closing an RE clone's
    /// sync window at the instant the encoder switches caches (§6.1
    /// step 5), where event quiescence would never occur because shared
    /// state is updated by every packet.
    pub fn end_op(&mut self, op: OpId, out: &mut Vec<Action>) {
        let Some(st) = self.ops.get_mut(&op) else { return };
        if st.quiesced {
            return;
        }
        st.quiesced = true;
        let (kind, src, pattern) = (st.kind, st.src, st.pattern);
        let get_subs = st.get_subs.clone();
        if kind == OpKind::Move {
            let ds = self.alloc_sub(op, SubRole::DelSupport);
            let dr = self.alloc_sub(op, SubRole::DelReport);
            out.push(Action::ToMb(src, Message::DelSupportPerflow { op: ds, key: pattern }));
            out.push(Action::ToMb(src, Message::DelReportPerflow { op: dr, key: pattern }));
        }
        // The source tagged its sync marks with the get sub-ops.
        for sub in get_subs {
            out.push(Action::ToMb(src, Message::EndSync { op: sub }));
        }
    }

    // ------------------------------------------------------------------
    // Southbound message handling
    // ------------------------------------------------------------------

    /// Process one message arriving from middlebox `from`.
    pub fn handle_mb_message(
        &mut self,
        from: MbId,
        msg: Message,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        self.messages_handled += 1;
        match msg {
            Message::Chunk { op: sub, chunk } => {
                let Some(&(parent, ref role)) = self.sub_ops.get(&sub) else { return };
                let role = role.clone();
                let Some(st) = self.ops.get_mut(&parent) else { return };
                st.chunks += 1;
                st.pending_keys.push(chunk.key);
                st.puts_outstanding += 1;
                st.last_activity = now;
                let dst = st.dst;
                let (put_role, mk): (SubRole, fn(OpId, openmb_types::StateChunk) -> Message) =
                    match role {
                        SubRole::GetSupport => (
                            SubRole::PutSupport { key: chunk.key },
                            |op, chunk| Message::PutSupportPerflow { op, chunk },
                        ),
                        SubRole::GetReport => (
                            SubRole::PutReport { key: chunk.key },
                            |op, chunk| Message::PutReportPerflow { op, chunk },
                        ),
                        _ => return,
                    };
                let put_sub = self.alloc_sub(parent, put_role);
                out.push(Action::ToMb(dst, mk(put_sub, chunk)));
            }
            Message::GetAck { op: sub, count: _ } => {
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                if let Some(st) = self.ops.get_mut(&parent) {
                    st.gets_outstanding = st.gets_outstanding.saturating_sub(1);
                    st.last_activity = now;
                }
                self.maybe_complete(parent, out);
            }
            Message::SharedChunk { op: sub, chunk } => {
                let Some(&(parent, ref role)) = self.sub_ops.get(&sub) else { return };
                let role = role.clone();
                let Some(st) = self.ops.get_mut(&parent) else { return };
                st.gets_outstanding = st.gets_outstanding.saturating_sub(1);
                st.puts_outstanding += 1;
                st.chunks += 1;
                st.last_activity = now;
                let dst = st.dst;
                let (put_role, m): (SubRole, Message) = match role {
                    SubRole::GetSharedSupport => {
                        let put_sub = self.alloc_sub(parent, SubRole::PutSharedSupport);
                        (SubRole::PutSharedSupport, Message::PutSupportShared { op: put_sub, chunk })
                    }
                    SubRole::GetSharedReport => {
                        let put_sub = self.alloc_sub(parent, SubRole::PutSharedReport);
                        (SubRole::PutSharedReport, Message::PutReportShared { op: put_sub, chunk })
                    }
                    _ => return,
                };
                let _ = put_role;
                out.push(Action::ToMb(dst, m));
            }
            Message::PutAck { op: sub, key } => {
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                if let Some(st) = self.ops.get_mut(&parent) {
                    st.puts_outstanding = st.puts_outstanding.saturating_sub(1);
                    st.last_activity = now;
                    if let Some(k) = key {
                        st.pending_keys.retain(|p| p != &k);
                        st.acked_keys.push(k);
                        // Release any buffered events this put unblocks.
                        let dst = st.dst;
                        let mut released = Vec::new();
                        let mut kept = Vec::new();
                        for ev in st.buffered.drain(..) {
                            if k.matches_bidi(&ev.key) {
                                released.push(ev);
                            } else {
                                kept.push(ev);
                            }
                        }
                        st.buffered = kept;
                        for ev in released {
                            st.events_forwarded += 1;
                            out.push(Action::ToMb(
                                dst,
                                Message::ReprocessPacket {
                                    op: parent,
                                    key: ev.key,
                                    packet: ev.packet,
                                },
                            ));
                        }
                    }
                }
                self.maybe_complete(parent, out);
            }
            Message::OpAck { op: sub } => {
                let Some(&(parent, ref role)) = self.sub_ops.get(&sub) else { return };
                let role = role.clone();
                match role {
                    // A shared get that found no state: nothing to put.
                    SubRole::GetSharedSupport | SubRole::GetSharedReport => {
                        if let Some(st) = self.ops.get_mut(&parent) {
                            st.gets_outstanding = st.gets_outstanding.saturating_sub(1);
                            st.last_activity = now;
                        }
                        self.maybe_complete(parent, out);
                    }
                    SubRole::Simple => {
                        if let Some(st) = self.ops.get_mut(&parent) {
                            if !st.completed {
                                st.completed = true;
                                out.push(Action::Notify(Completion::Ack { op: parent }));
                            }
                        }
                    }
                    SubRole::DelSupport | SubRole::DelReport => {
                        // Quiescence deletes; nothing to report.
                    }
                    _ => {}
                }
            }
            Message::ConfigValues { op: sub, pairs } => {
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                if let Some(st) = self.ops.get_mut(&parent) {
                    st.completed = true;
                }
                out.push(Action::Notify(Completion::Config { op: parent, pairs }));
            }
            Message::Stats { op: sub, stats } => {
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                if let Some(st) = self.ops.get_mut(&parent) {
                    st.completed = true;
                }
                out.push(Action::Notify(Completion::Stats { op: parent, stats }));
            }
            Message::EventMsg { event } => match event {
                Event::Reprocess { op: sub, key, packet } => {
                    // The MB tags events with the *get* sub-op id.
                    let parent = match self.sub_ops.get(&sub) {
                        Some(&(parent, _)) => parent,
                        // Events raised under the parent id directly
                        // (e.g. forwarded after completion).
                        None if self.ops.contains_key(&sub) => sub,
                        None => return,
                    };
                    let Some(st) = self.ops.get_mut(&parent) else { return };
                    st.last_activity = now;
                    let dst = st.dst;
                    // Buffer until the destination has ACKed the put for
                    // the state this event applies to (Fig 5). Forwarding
                    // the event *before* the put would let the put
                    // overwrite the replayed update at the destination —
                    // the §4.2.1 ordering violation. So an event is held
                    // while (a) its chunk's put is in flight, or (b) the
                    // get stream is still open and this key has not been
                    // ACKed (its chunk may not have been streamed yet).
                    let acked = st.acked_keys.iter().any(|k| k.matches_bidi(&key));
                    let pending = st.pending_keys.iter().any(|k| k.matches_bidi(&key));
                    let get_open = st.gets_outstanding > 0;
                    if self.config.buffer_events && (pending || (get_open && !acked)) {
                        st.buffered.push(BufferedEvent { key, packet });
                        self.events_buffered_peak =
                            self.events_buffered_peak.max(st.buffered.len());
                    } else {
                        st.events_forwarded += 1;
                        out.push(Action::ToMb(
                            dst,
                            Message::ReprocessPacket { op: parent, key, packet },
                        ));
                    }
                }
                Event::Introspection { code, key, values } => {
                    let pass = self
                        .subscriptions
                        .get(&from)
                        .map(|f| f.accepts(code, &key))
                        .unwrap_or(false);
                    if pass {
                        out.push(Action::Notify(Completion::MbEvent {
                            mb: from,
                            code,
                            key,
                            values,
                        }));
                    }
                }
            },
            Message::ErrorMsg { op: sub, error } => {
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                if let Some(st) = self.ops.get_mut(&parent) {
                    if !st.completed {
                        st.completed = true;
                        out.push(Action::Notify(Completion::Failed { op: parent, error }));
                    }
                }
            }
            _ => {
                // Controller never receives southbound requests.
            }
        }
    }

    fn maybe_complete(&mut self, parent: OpId, out: &mut Vec<Action>) {
        let Some(st) = self.ops.get_mut(&parent) else { return };
        if st.completed || st.gets_outstanding > 0 || st.puts_outstanding > 0 {
            return;
        }
        st.completed = true;
        // Flush events still buffered: every put has been ACKed, so what
        // remains belongs to flows whose state never had a chunk (created
        // during the window) or whose puts completed while they waited.
        let dst = st.dst;
        for ev in std::mem::take(&mut st.buffered) {
            st.events_forwarded += 1;
            out.push(Action::ToMb(
                dst,
                Message::ReprocessPacket { op: parent, key: ev.key, packet: ev.packet },
            ));
        }
        let c = match st.kind {
            OpKind::Move => Completion::MoveComplete { op: parent, chunks_moved: st.chunks },
            OpKind::Clone => Completion::CloneComplete { op: parent },
            OpKind::Merge => Completion::MergeComplete { op: parent },
            // Simple kinds complete via their own paths.
            _ => return,
        };
        out.push(Action::Notify(c));
    }

    /// Periodic quiescence check: for each completed move/clone/merge
    /// whose event stream has been silent for `quiesce_after`, finish
    /// the transaction — delete moved per-flow state at the source
    /// (moves only) and close the sync window.
    pub fn tick(&mut self, now: SimTime, out: &mut Vec<Action>) {
        let quiesce = self.config.quiesce_after;
        let ready: Vec<OpId> = self
            .ops
            .iter()
            .filter(|(_, st)| {
                st.completed
                    && !st.quiesced
                    && matches!(st.kind, OpKind::Move | OpKind::Clone | OpKind::Merge)
                    && st.buffered.is_empty()
                    && now.since(st.last_activity) >= quiesce
            })
            .map(|(id, _)| *id)
            .collect();
        for op in ready {
            let (kind, src, pattern, get_subs) = {
                let st = self.ops.get_mut(&op).expect("op exists");
                st.quiesced = true;
                (st.kind, st.src, st.pattern, st.get_subs.clone())
            };
            if kind == OpKind::Move {
                let ds = self.alloc_sub(op, SubRole::DelSupport);
                let dr = self.alloc_sub(op, SubRole::DelReport);
                out.push(Action::ToMb(src, Message::DelSupportPerflow { op: ds, key: pattern }));
                out.push(Action::ToMb(src, Message::DelReportPerflow { op: dr, key: pattern }));
            }
            for sub in get_subs {
                out.push(Action::ToMb(src, Message::EndSync { op: sub }));
            }
        }
    }

    /// Number of operations not yet quiesced (testing).
    pub fn open_ops(&self) -> usize {
        self.ops
            .values()
            .filter(|st| {
                !(st.quiesced
                    || (st.completed
                        && !matches!(st.kind, OpKind::Move | OpKind::Clone | OpKind::Merge)))
            })
            .count()
    }

    /// Events forwarded under an operation (experiments).
    pub fn events_forwarded(&self, op: OpId) -> u64 {
        self.ops.get(&op).map(|s| s.events_forwarded).unwrap_or(0)
    }

    /// Total chunks transferred under an operation (experiments).
    pub fn chunks_moved(&self, op: OpId) -> usize {
        self.ops.get(&op).map(|s| s.chunks).unwrap_or(0)
    }
}

impl OpState {
    fn new(kind: OpKind, src: MbId, dst: MbId, now: SimTime) -> Self {
        OpState {
            kind,
            src,
            dst,
            pattern: HeaderFieldList::any(),
            gets_outstanding: 0,
            puts_outstanding: 0,
            acked_keys: Vec::new(),
            pending_keys: Vec::new(),
            get_subs: Vec::new(),
            buffered: Vec::new(),
            chunks: 0,
            completed: false,
            last_activity: now,
            quiesced: false,
            events_forwarded: 0,
        }
    }
}

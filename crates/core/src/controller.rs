//! The MB controller (§5): the broker between northbound control
//! operations and the southbound protocol.
//!
//! [`ControllerCore`] is a pure state machine: northbound calls and
//! southbound messages go in, [`Action`]s come out. It implements the
//! Figure 5 choreography for `moveInternal` — issue both per-flow gets
//! to the source, forward streamed chunks as puts to the destination,
//! track per-put ACKs, buffer reprocess events "until the DstMB has
//! ACK'd the put for the piece of per-flow state to which the event
//! applies", and, after a quiescence window with no events (the routing
//! change has taken effect), delete the moved state at the source — plus
//! the analogous sequences for `cloneSupport` and `mergeInternal`
//! (shared state; no delete).
//!
//! Keeping the core pure lets the same controller run embedded in the
//! discrete-event simulator (`nodes::ControllerNode`) and over real TCP
//! transports (`tcp`), exactly as the paper's Floodlight module serves
//! both their testbed and their dummy-MB scalability rig.

use std::collections::{HashMap, HashSet};

use openmb_simnet::{SimDuration, SimTime};
use openmb_types::wire::{Event, EventFilter, Message};
use openmb_types::{
    ConfigValue, Error, FlowKey, HeaderFieldList, HierarchicalKey, MbId, OpId, Packet, StateStats,
};

/// An effect the embedding must carry out.
///
/// `#[non_exhaustive]`: embeddings must keep a wildcard arm so new
/// action kinds are not breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send a protocol message to a middlebox.
    ToMb(MbId, Message),
    /// Deliver a completion/notification to the control application.
    Notify(Completion),
}

/// Northbound completions and notifications delivered to control
/// applications.
///
/// `#[non_exhaustive]`: applications must keep a wildcard arm so new
/// completion kinds are not breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion {
    /// `readConfig` finished.
    Config { op: OpId, pairs: Vec<(HierarchicalKey, Vec<ConfigValue>)> },
    /// `writeConfig`/`delConfig`/`enableEvents` acknowledged.
    Ack { op: OpId },
    /// `stats` finished.
    Stats { op: OpId, stats: StateStats },
    /// `moveInternal` finished: every put has been ACKed (events may
    /// continue to be forwarded afterwards).
    MoveComplete { op: OpId, chunks_moved: usize },
    /// `cloneSupport` finished.
    CloneComplete { op: OpId },
    /// `mergeInternal` finished.
    MergeComplete { op: OpId },
    /// An operation failed. Carries the typed [`Error`] so applications
    /// can branch on the failure kind (timeout, unreachable MB,
    /// granularity, ...) instead of parsing a message string.
    Failed { op: OpId, error: Error },
    /// An introspection event arrived from a middlebox the application
    /// subscribed to.
    MbEvent { mb: MbId, code: u32, key: FlowKey, values: Vec<(String, String)> },
}

impl Completion {
    /// The operation this completion concludes (`None` for MbEvent).
    pub fn op(&self) -> Option<OpId> {
        match self {
            Completion::Config { op, .. }
            | Completion::Ack { op }
            | Completion::Stats { op, .. }
            | Completion::MoveComplete { op, .. }
            | Completion::CloneComplete { op }
            | Completion::MergeComplete { op }
            | Completion::Failed { op, .. } => Some(*op),
            Completion::MbEvent { .. } => None,
        }
    }
}

/// Which southbound exchange a sub-operation id belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SubRole {
    GetSupport,
    GetReport,
    PutSupport { key: HeaderFieldList },
    PutReport { key: HeaderFieldList },
    GetSharedSupport,
    GetSharedReport,
    PutSharedSupport,
    PutSharedReport,
    DelSupport,
    DelReport,
    Simple,
}

/// A reprocess event parked until its chunk's put is ACKed.
#[derive(Debug, Clone)]
struct BufferedEvent {
    key: FlowKey,
    packet: Packet,
}

/// Retry bookkeeping for idempotent simple requests (config reads,
/// stats). The stored request keeps its original sub-op id, so a
/// duplicate reply after a retry lands on an already-completed op and
/// is ignored.
struct RetryState {
    target: MbId,
    request: Message,
    next_at: SimTime,
    backoff: SimDuration,
    left: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    ReadConfig,
    WriteConfig,
    DelConfig,
    Stats,
    EnableEvents,
    Move,
    Clone,
    Merge,
}

/// Per-operation progress.
struct OpState {
    kind: OpKind,
    src: MbId,
    dst: MbId,
    /// For moves: the pattern being moved.
    pattern: HeaderFieldList,
    /// Outstanding get streams (2 for move: support+report; 1-2 for
    /// clone/merge).
    gets_outstanding: u32,
    /// Outstanding puts (sub-op ids).
    puts_outstanding: u32,
    /// Chunk keys whose puts have been ACKed.
    acked_keys: Vec<HeaderFieldList>,
    /// Chunk keys whose puts are in flight.
    pending_keys: Vec<HeaderFieldList>,
    /// The get sub-operations issued to the source. The source MB tags
    /// its moved/cloned marks (and its reprocess events) with these ids,
    /// so closing the sync window means sending EndSync for each.
    get_subs: Vec<OpId>,
    /// Events waiting for their chunk's put ACK.
    buffered: Vec<BufferedEvent>,
    /// Total chunks transferred.
    chunks: usize,
    /// Completion already reported?
    completed: bool,
    /// Virtual time of the most recent event (or completion), for the
    /// quiescence timer.
    last_activity: SimTime,
    /// Quiescence already executed (del/EndSync sent)?
    quiesced: bool,
    /// Virtual time at which the op is aborted if still incomplete.
    deadline: SimTime,
    /// Retry schedule for idempotent simple requests.
    retry: Option<RetryState>,
    /// Statistics: events forwarded under this op.
    pub events_forwarded: u64,
}

/// Tunable controller parameters.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// How long after the last reprocess event the controller assumes
    /// the routing change has taken effect (paper: "a fixed amount of
    /// time (e.g., 5 seconds)").
    pub quiesce_after: SimDuration,
    /// Compress state transfers between controller and MBs (§8.3).
    /// Affects the modeled wire size of Chunk/Put messages via the
    /// embedding; the core only records the setting.
    pub compress_transfers: bool,
    /// Buffer reprocess events until the matching put is ACKed (Fig 5).
    /// Disabling this is an ABLATION ONLY: events forwarded before their
    /// chunk's put land first and are overwritten by the put — the exact
    /// §4.2.1 atomicity violation the design exists to prevent. The
    /// `ablations` harness measures the resulting lost updates.
    pub buffer_events: bool,
    /// Deadline for every northbound operation: if the op has not
    /// completed within this span, `tick` aborts it — rolling back
    /// partially-put destination state (moves), dropping buffered
    /// reprocess events, releasing the op's bookkeeping, and notifying
    /// the application with [`Error::Timeout`] (or
    /// [`Error::MbUnreachable`] when the embedding reported a crash).
    pub op_deadline: SimDuration,
    /// Initial backoff before the first retry of an idempotent simple
    /// request (config reads, stats). Doubles per attempt.
    pub retry_backoff: SimDuration,
    /// Maximum retries for idempotent simple requests. Non-idempotent
    /// requests (writes, transfers) are never retried — they fail at
    /// the deadline instead.
    pub max_retries: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            quiesce_after: SimDuration::from_millis(500),
            compress_transfers: false,
            buffer_events: true,
            op_deadline: SimDuration::from_secs(10),
            retry_backoff: SimDuration::from_millis(100),
            max_retries: 3,
        }
    }
}

/// The MB controller state machine.
pub struct ControllerCore {
    /// Registered middleboxes (application-visible handles).
    mbs: Vec<MbId>,
    next_op: u64,
    ops: HashMap<OpId, OpState>,
    sub_ops: HashMap<OpId, (OpId, SubRole)>,
    /// Introspection subscription per MB (controller-side record).
    subscriptions: HashMap<MbId, EventFilter>,
    /// MBs the embedding has reported as crashed/unreachable. Every
    /// northbound call naming one fails fast with
    /// [`Error::MbUnreachable`] until `mark_reachable` clears it.
    unreachable: HashSet<MbId>,
    pub config: ControllerConfig,
    /// Counters for experiments (messages brokered, events buffered...).
    pub messages_handled: u64,
    pub events_buffered_peak: usize,
}

impl ControllerCore {
    /// A controller with the given tunables.
    pub fn new(config: ControllerConfig) -> Self {
        ControllerCore {
            mbs: Vec::new(),
            next_op: 1,
            ops: HashMap::new(),
            sub_ops: HashMap::new(),
            subscriptions: HashMap::new(),
            unreachable: HashSet::new(),
            config,
            messages_handled: 0,
            events_buffered_peak: 0,
        }
    }

    /// Register a middlebox; returns its handle.
    pub fn register_mb(&mut self) -> MbId {
        let id = MbId(self.mbs.len() as u32);
        self.mbs.push(id);
        id
    }

    fn alloc_op(&mut self) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        id
    }

    fn alloc_sub(&mut self, parent: OpId, role: SubRole) -> OpId {
        let id = self.alloc_op();
        self.sub_ops.insert(id, (parent, role));
        id
    }

    /// Fresh per-op state with the deadline stamped from config.
    fn new_op_state(&self, kind: OpKind, src: MbId, dst: MbId, now: SimTime) -> OpState {
        OpState::new(kind, src, dst, now, now.after(self.config.op_deadline))
    }

    /// First unusable MB among `mbs`: unregistered handles surface as
    /// [`Error::UnknownMb`], crashed ones as [`Error::MbUnreachable`].
    fn mb_error(&self, mbs: &[MbId]) -> Option<Error> {
        for &m in mbs {
            if !self.mbs.contains(&m) {
                return Some(Error::UnknownMb(m));
            }
            if self.unreachable.contains(&m) {
                return Some(Error::MbUnreachable(m));
            }
        }
        None
    }

    /// Record an operation that failed validation before any southbound
    /// traffic, and deliver the typed failure immediately.
    #[allow(clippy::too_many_arguments)]
    fn fail_fast(
        &mut self,
        op: OpId,
        kind: OpKind,
        src: MbId,
        dst: MbId,
        error: Error,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        let mut st = self.new_op_state(kind, src, dst, now);
        st.completed = true;
        st.quiesced = true;
        self.ops.insert(op, st);
        out.push(Action::Notify(Completion::Failed { op, error }));
    }

    /// Arm the retry schedule for an idempotent simple request. The
    /// resent message reuses the original sub-op id, so a duplicate
    /// reply lands on an already-completed op and is absorbed by the
    /// `completed` guards.
    fn arm_retry(&mut self, op: OpId, target: MbId, request: Message, now: SimTime) {
        let backoff = self.config.retry_backoff;
        if let Some(st) = self.ops.get_mut(&op) {
            st.retry = Some(RetryState {
                target,
                request,
                next_at: now.after(backoff),
                backoff,
                left: self.config.max_retries,
            });
        }
    }

    // ------------------------------------------------------------------
    // Northbound API (§5)
    // ------------------------------------------------------------------

    /// `readConfig(SrcMB, HierarchicalKey)`.
    pub fn read_config(
        &mut self,
        src: MbId,
        key: HierarchicalKey,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[src]) {
            self.fail_fast(op, OpKind::ReadConfig, src, src, e, now, out);
            return op;
        }
        self.ops.insert(op, self.new_op_state(OpKind::ReadConfig, src, src, now));
        let sub = self.alloc_sub(op, SubRole::Simple);
        let msg = Message::GetConfig { op: sub, key };
        // Config reads are idempotent: retry on a lost request/reply.
        self.arm_retry(op, src, msg.clone(), now);
        out.push(Action::ToMb(src, msg));
        op
    }

    /// `writeConfig(DstMB, HierarchicalKey, values)`.
    pub fn write_config(
        &mut self,
        dst: MbId,
        key: HierarchicalKey,
        values: Vec<ConfigValue>,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[dst]) {
            self.fail_fast(op, OpKind::WriteConfig, dst, dst, e, now, out);
            return op;
        }
        self.ops.insert(op, self.new_op_state(OpKind::WriteConfig, dst, dst, now));
        let sub = self.alloc_sub(op, SubRole::Simple);
        out.push(Action::ToMb(dst, Message::SetConfig { op: sub, key, values }));
        op
    }

    /// `delConfig` — a composition convenience over the southbound API.
    pub fn del_config(
        &mut self,
        dst: MbId,
        key: HierarchicalKey,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[dst]) {
            self.fail_fast(op, OpKind::DelConfig, dst, dst, e, now, out);
            return op;
        }
        self.ops.insert(op, self.new_op_state(OpKind::DelConfig, dst, dst, now));
        let sub = self.alloc_sub(op, SubRole::Simple);
        out.push(Action::ToMb(dst, Message::DelConfig { op: sub, key }));
        op
    }

    /// `stats(SrcMB, HeaderFieldList)`.
    pub fn stats(
        &mut self,
        src: MbId,
        key: HeaderFieldList,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[src]) {
            self.fail_fast(op, OpKind::Stats, src, src, e, now, out);
            return op;
        }
        self.ops.insert(op, self.new_op_state(OpKind::Stats, src, src, now));
        let sub = self.alloc_sub(op, SubRole::Simple);
        let msg = Message::GetStats { op: sub, key };
        // Stats reads are idempotent: retry on a lost request/reply.
        self.arm_retry(op, src, msg.clone(), now);
        out.push(Action::ToMb(src, msg));
        op
    }

    /// Subscribe the application to introspection events from `mb`.
    pub fn enable_events(
        &mut self,
        mb: MbId,
        filter: EventFilter,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[mb]) {
            self.fail_fast(op, OpKind::EnableEvents, mb, mb, e, now, out);
            return op;
        }
        self.ops.insert(op, self.new_op_state(OpKind::EnableEvents, mb, mb, now));
        self.subscriptions.insert(mb, filter.clone());
        let sub = self.alloc_sub(op, SubRole::Simple);
        out.push(Action::ToMb(mb, Message::EnableEvents { op: sub, filter }));
        op
    }

    /// `moveInternal(SrcMB, DstMB, HeaderFieldList)` — Figure 5.
    pub fn move_internal(
        &mut self,
        src: MbId,
        dst: MbId,
        key: HeaderFieldList,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[src, dst]) {
            self.fail_fast(op, OpKind::Move, src, dst, e, now, out);
            return op;
        }
        let mut st = self.new_op_state(OpKind::Move, src, dst, now);
        st.pattern = key;
        st.gets_outstanding = 2;
        self.ops.insert(op, st);
        let gs = self.alloc_sub(op, SubRole::GetSupport);
        let gr = self.alloc_sub(op, SubRole::GetReport);
        if let Some(st) = self.ops.get_mut(&op) {
            st.get_subs.extend([gs, gr]);
        }
        out.push(Action::ToMb(src, Message::GetSupportPerflow { op: gs, key }));
        out.push(Action::ToMb(src, Message::GetReportPerflow { op: gr, key }));
        op
    }

    /// `cloneSupport(SrcMB, DstMB)` — shared supporting state only.
    pub fn clone_support(
        &mut self,
        src: MbId,
        dst: MbId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[src, dst]) {
            self.fail_fast(op, OpKind::Clone, src, dst, e, now, out);
            return op;
        }
        let mut st = self.new_op_state(OpKind::Clone, src, dst, now);
        st.gets_outstanding = 1;
        self.ops.insert(op, st);
        let g = self.alloc_sub(op, SubRole::GetSharedSupport);
        if let Some(st) = self.ops.get_mut(&op) {
            st.get_subs.push(g);
        }
        out.push(Action::ToMb(src, Message::GetSupportShared { op: g }));
        op
    }

    /// `mergeInternal(SrcMB, DstMB)` — shared supporting + reporting.
    pub fn merge_internal(
        &mut self,
        src: MbId,
        dst: MbId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[src, dst]) {
            self.fail_fast(op, OpKind::Merge, src, dst, e, now, out);
            return op;
        }
        let mut st = self.new_op_state(OpKind::Merge, src, dst, now);
        st.gets_outstanding = 2;
        self.ops.insert(op, st);
        let gs = self.alloc_sub(op, SubRole::GetSharedSupport);
        let gr = self.alloc_sub(op, SubRole::GetSharedReport);
        if let Some(st) = self.ops.get_mut(&op) {
            st.get_subs.extend([gs, gr]);
        }
        out.push(Action::ToMb(src, Message::GetSupportShared { op: gs }));
        out.push(Action::ToMb(src, Message::GetReportShared { op: gr }));
        op
    }

    /// Explicitly finish a move/clone/merge transaction now: send the
    /// EndSync (and, for moves, the deletes) without waiting for the
    /// quiescence timer. Control applications use this when *they* know
    /// the routing transition is complete — e.g. closing an RE clone's
    /// sync window at the instant the encoder switches caches (§6.1
    /// step 5), where event quiescence would never occur because shared
    /// state is updated by every packet.
    pub fn end_op(&mut self, op: OpId, out: &mut Vec<Action>) {
        // The source tagged its sync marks with the get sub-ops;
        // quiesce_op closes each of them (and deletes moved state).
        self.quiesce_op(op, out);
    }

    // ------------------------------------------------------------------
    // Southbound message handling
    // ------------------------------------------------------------------

    /// Process one message arriving from middlebox `from`.
    pub fn handle_mb_message(
        &mut self,
        from: MbId,
        msg: Message,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        self.messages_handled += 1;
        match msg {
            Message::Chunk { op: sub, chunk } => {
                let Some(&(parent, ref role)) = self.sub_ops.get(&sub) else { return };
                let role = role.clone();
                let Some(st) = self.ops.get_mut(&parent) else { return };
                st.chunks += 1;
                st.pending_keys.push(chunk.key);
                st.puts_outstanding += 1;
                st.last_activity = now;
                let dst = st.dst;
                let (put_role, mk): (SubRole, fn(OpId, openmb_types::StateChunk) -> Message) =
                    match role {
                        SubRole::GetSupport => {
                            (SubRole::PutSupport { key: chunk.key }, |op, chunk| {
                                Message::PutSupportPerflow { op, chunk }
                            })
                        }
                        SubRole::GetReport => {
                            (SubRole::PutReport { key: chunk.key }, |op, chunk| {
                                Message::PutReportPerflow { op, chunk }
                            })
                        }
                        _ => return,
                    };
                let put_sub = self.alloc_sub(parent, put_role);
                out.push(Action::ToMb(dst, mk(put_sub, chunk)));
            }
            Message::GetAck { op: sub, count: _ } => {
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                if let Some(st) = self.ops.get_mut(&parent) {
                    st.gets_outstanding = st.gets_outstanding.saturating_sub(1);
                    st.last_activity = now;
                }
                self.maybe_complete(parent, out);
            }
            Message::SharedChunk { op: sub, chunk } => {
                let Some(&(parent, ref role)) = self.sub_ops.get(&sub) else { return };
                let role = role.clone();
                let Some(st) = self.ops.get_mut(&parent) else { return };
                st.gets_outstanding = st.gets_outstanding.saturating_sub(1);
                st.puts_outstanding += 1;
                st.chunks += 1;
                st.last_activity = now;
                let dst = st.dst;
                let (put_role, m): (SubRole, Message) = match role {
                    SubRole::GetSharedSupport => {
                        let put_sub = self.alloc_sub(parent, SubRole::PutSharedSupport);
                        (
                            SubRole::PutSharedSupport,
                            Message::PutSupportShared { op: put_sub, chunk },
                        )
                    }
                    SubRole::GetSharedReport => {
                        let put_sub = self.alloc_sub(parent, SubRole::PutSharedReport);
                        (SubRole::PutSharedReport, Message::PutReportShared { op: put_sub, chunk })
                    }
                    _ => return,
                };
                let _ = put_role;
                out.push(Action::ToMb(dst, m));
            }
            Message::PutAck { op: sub, key } => {
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                if let Some(st) = self.ops.get_mut(&parent) {
                    st.puts_outstanding = st.puts_outstanding.saturating_sub(1);
                    st.last_activity = now;
                    if let Some(k) = key {
                        st.pending_keys.retain(|p| p != &k);
                        st.acked_keys.push(k);
                        // Release any buffered events this put unblocks.
                        let dst = st.dst;
                        let mut released = Vec::new();
                        let mut kept = Vec::new();
                        for ev in st.buffered.drain(..) {
                            if k.matches_bidi(&ev.key) {
                                released.push(ev);
                            } else {
                                kept.push(ev);
                            }
                        }
                        st.buffered = kept;
                        for ev in released {
                            st.events_forwarded += 1;
                            out.push(Action::ToMb(
                                dst,
                                Message::ReprocessPacket {
                                    op: parent,
                                    key: ev.key,
                                    packet: ev.packet,
                                },
                            ));
                        }
                    }
                }
                self.maybe_complete(parent, out);
            }
            Message::OpAck { op: sub } => {
                let Some(&(parent, ref role)) = self.sub_ops.get(&sub) else { return };
                let role = role.clone();
                match role {
                    // A shared get that found no state: nothing to put.
                    SubRole::GetSharedSupport | SubRole::GetSharedReport => {
                        if let Some(st) = self.ops.get_mut(&parent) {
                            st.gets_outstanding = st.gets_outstanding.saturating_sub(1);
                            st.last_activity = now;
                        }
                        self.maybe_complete(parent, out);
                    }
                    SubRole::Simple => {
                        if let Some(st) = self.ops.get_mut(&parent) {
                            if !st.completed {
                                st.completed = true;
                                out.push(Action::Notify(Completion::Ack { op: parent }));
                            }
                        }
                    }
                    SubRole::DelSupport | SubRole::DelReport => {
                        // Quiescence deletes; nothing to report.
                    }
                    _ => {}
                }
            }
            Message::ConfigValues { op: sub, pairs } => {
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                if let Some(st) = self.ops.get_mut(&parent) {
                    st.completed = true;
                }
                out.push(Action::Notify(Completion::Config { op: parent, pairs }));
            }
            Message::Stats { op: sub, stats } => {
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                if let Some(st) = self.ops.get_mut(&parent) {
                    st.completed = true;
                }
                out.push(Action::Notify(Completion::Stats { op: parent, stats }));
            }
            Message::EventMsg { event } => match event {
                Event::Reprocess { op: sub, key, packet } => {
                    // The MB tags events with the *get* sub-op id.
                    let parent = match self.sub_ops.get(&sub) {
                        Some(&(parent, _)) => parent,
                        // Events raised under the parent id directly
                        // (e.g. forwarded after completion).
                        None if self.ops.contains_key(&sub) => sub,
                        None => return,
                    };
                    let Some(st) = self.ops.get_mut(&parent) else { return };
                    st.last_activity = now;
                    let dst = st.dst;
                    // Buffer until the destination has ACKed the put for
                    // the state this event applies to (Fig 5). Forwarding
                    // the event *before* the put would let the put
                    // overwrite the replayed update at the destination —
                    // the §4.2.1 ordering violation. So an event is held
                    // while (a) its chunk's put is in flight, or (b) the
                    // get stream is still open and this key has not been
                    // ACKed (its chunk may not have been streamed yet).
                    let acked = st.acked_keys.iter().any(|k| k.matches_bidi(&key));
                    let pending = st.pending_keys.iter().any(|k| k.matches_bidi(&key));
                    let get_open = st.gets_outstanding > 0;
                    if self.config.buffer_events && (pending || (get_open && !acked)) {
                        st.buffered.push(BufferedEvent { key, packet });
                        self.events_buffered_peak =
                            self.events_buffered_peak.max(st.buffered.len());
                    } else {
                        st.events_forwarded += 1;
                        out.push(Action::ToMb(
                            dst,
                            Message::ReprocessPacket { op: parent, key, packet },
                        ));
                    }
                }
                Event::Introspection { code, key, values } => {
                    let pass = self
                        .subscriptions
                        .get(&from)
                        .map(|f| f.accepts(code, &key))
                        .unwrap_or(false);
                    if pass {
                        out.push(Action::Notify(Completion::MbEvent {
                            mb: from,
                            code,
                            key,
                            values,
                        }));
                    }
                }
            },
            Message::ErrorMsg { op: sub, error } => {
                // A southbound rejection aborts the whole operation:
                // for transfers this also rolls back partially-put
                // destination state and closes the sync window, so the
                // op releases its bookkeeping instead of lingering open.
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                self.abort_op(parent, error, out);
            }
            _ => {
                // Controller never receives southbound requests.
            }
        }
    }

    /// The embedding observed `mb` crash or become unreachable. Every
    /// in-flight operation touching it is aborted with
    /// [`Error::MbUnreachable`]; subsequent northbound calls naming `mb`
    /// fail fast until [`ControllerCore::mark_reachable`]. Completed
    /// transfers awaiting quiescence are finalized instead of aborted —
    /// their state already moved and the application already saw the
    /// completion; recovering from a post-completion crash is the
    /// application's job (see `apps::failover`).
    pub fn mark_unreachable(&mut self, mb: MbId, out: &mut Vec<Action>) {
        if !self.unreachable.insert(mb) {
            return;
        }
        let mut touched: Vec<OpId> = self
            .ops
            .iter()
            .filter(|(_, st)| !st.quiesced && (st.src == mb || st.dst == mb))
            .map(|(id, _)| *id)
            .collect();
        // HashMap iteration order is arbitrary; sort so replays with the
        // same fault schedule emit byte-identical action streams.
        touched.sort();
        for op in touched {
            let Some(st) = self.ops.get_mut(&op) else { continue };
            if st.completed {
                if matches!(st.kind, OpKind::Move | OpKind::Clone | OpKind::Merge) {
                    // Finalize: close the sync window and (moves) delete
                    // at the source, if the source is still up.
                    self.quiesce_op(op, out);
                }
            } else {
                self.abort_op(op, Error::MbUnreachable(mb), out);
            }
        }
    }

    /// Clear the unreachable mark (the MB restarted and re-attached).
    pub fn mark_reachable(&mut self, mb: MbId) {
        self.unreachable.remove(&mb);
    }

    /// Whether the embedding has marked `mb` unreachable.
    pub fn is_unreachable(&self, mb: MbId) -> bool {
        self.unreachable.contains(&mb)
    }

    /// Abort an in-flight operation: drop buffered reprocess events,
    /// roll back partially-put destination state (moves only — the
    /// southbound protocol has no shared-state delete, so clone/merge
    /// destinations keep whatever shared chunks already landed), close
    /// the source's sync window, release the op's bookkeeping, and
    /// notify the application with the typed `error`.
    fn abort_op(&mut self, op: OpId, error: Error, out: &mut Vec<Action>) {
        let Some(st) = self.ops.get_mut(&op) else { return };
        if st.completed || st.quiesced {
            return;
        }
        st.completed = true;
        st.quiesced = true;
        st.retry = None;
        st.buffered.clear();
        st.pending_keys.clear();
        st.gets_outstanding = 0;
        st.puts_outstanding = 0;
        let (kind, src, dst, pattern) = (st.kind, st.src, st.dst, st.pattern);
        let had_chunks = st.chunks > 0;
        let get_subs = std::mem::take(&mut st.get_subs);
        if kind == OpKind::Move && had_chunks && !self.unreachable.contains(&dst) {
            // Before the move the destination held nothing under the
            // op's pattern (the premise of moveInternal), so deleting by
            // pattern removes exactly the chunks this op streamed in.
            let ds = self.alloc_sub(op, SubRole::DelSupport);
            let dr = self.alloc_sub(op, SubRole::DelReport);
            out.push(Action::ToMb(dst, Message::DelSupportPerflow { op: ds, key: pattern }));
            out.push(Action::ToMb(dst, Message::DelReportPerflow { op: dr, key: pattern }));
        }
        if !self.unreachable.contains(&src) {
            for sub in get_subs {
                out.push(Action::ToMb(src, Message::EndSync { op: sub }));
            }
        }
        out.push(Action::Notify(Completion::Failed { op, error }));
    }

    /// Finish a completed transfer: mark it quiesced, delete moved
    /// per-flow state at the source (moves only), and close the sync
    /// window. Skips messages to MBs marked unreachable.
    fn quiesce_op(&mut self, op: OpId, out: &mut Vec<Action>) {
        let Some(st) = self.ops.get_mut(&op) else { return };
        if st.quiesced {
            return;
        }
        st.quiesced = true;
        let (kind, src, pattern) = (st.kind, st.src, st.pattern);
        let get_subs = st.get_subs.clone();
        if self.unreachable.contains(&src) {
            return;
        }
        if kind == OpKind::Move {
            let ds = self.alloc_sub(op, SubRole::DelSupport);
            let dr = self.alloc_sub(op, SubRole::DelReport);
            out.push(Action::ToMb(src, Message::DelSupportPerflow { op: ds, key: pattern }));
            out.push(Action::ToMb(src, Message::DelReportPerflow { op: dr, key: pattern }));
        }
        for sub in get_subs {
            out.push(Action::ToMb(src, Message::EndSync { op: sub }));
        }
    }

    fn maybe_complete(&mut self, parent: OpId, out: &mut Vec<Action>) {
        let Some(st) = self.ops.get_mut(&parent) else { return };
        if st.completed || st.gets_outstanding > 0 || st.puts_outstanding > 0 {
            return;
        }
        st.completed = true;
        // Flush events still buffered: every put has been ACKed, so what
        // remains belongs to flows whose state never had a chunk (created
        // during the window) or whose puts completed while they waited.
        let dst = st.dst;
        for ev in std::mem::take(&mut st.buffered) {
            st.events_forwarded += 1;
            out.push(Action::ToMb(
                dst,
                Message::ReprocessPacket { op: parent, key: ev.key, packet: ev.packet },
            ));
        }
        let c = match st.kind {
            OpKind::Move => Completion::MoveComplete { op: parent, chunks_moved: st.chunks },
            OpKind::Clone => Completion::CloneComplete { op: parent },
            OpKind::Merge => Completion::MergeComplete { op: parent },
            // Simple kinds complete via their own paths.
            _ => return,
        };
        out.push(Action::Notify(c));
    }

    /// Periodic maintenance, in deterministic order (op lists are
    /// sorted — HashMap iteration order must never leak into the action
    /// stream):
    ///
    /// 1. **Retries** — resend idempotent simple requests whose backoff
    ///    expired, doubling the backoff each attempt.
    /// 2. **Deadlines** — abort every op that is past its deadline and
    ///    still incomplete, with [`Error::Timeout`].
    /// 3. **Quiescence** — for each completed move/clone/merge whose
    ///    event stream has been silent for `quiesce_after`, finish the
    ///    transaction: delete moved per-flow state at the source (moves
    ///    only) and close the sync window.
    pub fn tick(&mut self, now: SimTime, out: &mut Vec<Action>) {
        // 1. Retries.
        let mut due: Vec<OpId> = self
            .ops
            .iter()
            .filter(|(_, st)| {
                !st.completed && st.retry.as_ref().is_some_and(|r| r.left > 0 && now >= r.next_at)
            })
            .map(|(id, _)| *id)
            .collect();
        due.sort();
        for op in due {
            let Some(st) = self.ops.get_mut(&op) else { continue };
            let Some(r) = st.retry.as_mut() else { continue };
            r.left -= 1;
            r.backoff = r.backoff.scaled(2);
            r.next_at = now.after(r.backoff);
            let (target, resend) = (r.target, r.request.clone());
            if !self.unreachable.contains(&target) {
                out.push(Action::ToMb(target, resend));
            }
        }

        // 2. Deadlines.
        let mut overdue: Vec<OpId> = self
            .ops
            .iter()
            .filter(|(_, st)| !st.completed && !st.quiesced && now >= st.deadline)
            .map(|(id, _)| *id)
            .collect();
        overdue.sort();
        for op in overdue {
            self.abort_op(op, Error::Timeout { op }, out);
        }

        // 3. Quiescence.
        let quiesce = self.config.quiesce_after;
        let mut ready: Vec<OpId> = self
            .ops
            .iter()
            .filter(|(_, st)| {
                st.completed
                    && !st.quiesced
                    && matches!(st.kind, OpKind::Move | OpKind::Clone | OpKind::Merge)
                    && st.buffered.is_empty()
                    && now.since(st.last_activity) >= quiesce
            })
            .map(|(id, _)| *id)
            .collect();
        ready.sort();
        for op in ready {
            if self.ops.contains_key(&op) {
                self.quiesce_op(op, out);
            } else {
                // The op's state vanished between collection and
                // processing. Nothing to clean up, but the application
                // is owed a terminal completion rather than a panic.
                out.push(Action::Notify(Completion::Failed {
                    op,
                    error: Error::OpFailed("operation state lost before quiescence".into()),
                }));
            }
        }
    }

    /// Number of operations not yet quiesced (testing).
    pub fn open_ops(&self) -> usize {
        self.ops
            .values()
            .filter(|st| {
                !(st.quiesced
                    || (st.completed
                        && !matches!(st.kind, OpKind::Move | OpKind::Clone | OpKind::Merge)))
            })
            .count()
    }

    /// Events forwarded under an operation (experiments).
    pub fn events_forwarded(&self, op: OpId) -> u64 {
        self.ops.get(&op).map(|s| s.events_forwarded).unwrap_or(0)
    }

    /// Total chunks transferred under an operation (experiments).
    pub fn chunks_moved(&self, op: OpId) -> usize {
        self.ops.get(&op).map(|s| s.chunks).unwrap_or(0)
    }
}

impl OpState {
    fn new(kind: OpKind, src: MbId, dst: MbId, now: SimTime, deadline: SimTime) -> Self {
        OpState {
            kind,
            src,
            dst,
            pattern: HeaderFieldList::any(),
            gets_outstanding: 0,
            puts_outstanding: 0,
            acked_keys: Vec::new(),
            pending_keys: Vec::new(),
            get_subs: Vec::new(),
            buffered: Vec::new(),
            chunks: 0,
            completed: false,
            last_activity: now,
            quiesced: false,
            deadline,
            retry: None,
            events_forwarded: 0,
        }
    }
}

//! The MB controller (§5), sharded: N independent operation streams
//! behind the single-controller API.
//!
//! [`ControllerCore`] is the facade every embedding talks to. It owns
//! `config.shards` [`ControllerShard`]s — each a complete pure state
//! machine with its own op table, transfer ledgers, ack sets, and
//! pending-delete ledger — plus the [`ShardRouter`] that decides, per
//! operation, which shard runs it:
//!
//! * **Transfers** (`moveInternal`, `cloneSupport`, `mergeInternal`)
//!   hash `(flowspace, MB pair)` to a shard, unless they *conflict*
//!   with a live transfer — share a middlebox and have flowspaces that
//!   can select a common flow (direction-insensitively) — in which
//!   case they are pinned to that transfer's shard, where per-shard
//!   FIFO ordering serializes them. A transfer whose conflict set
//!   spans *several* shards (a bridging op between two disjoint live
//!   transfers) cannot be serialized by any placement: it is reserved
//!   on the earliest conflicting op's shard with no southbound
//!   traffic, and released — its gets finally issued — once every
//!   conflicting op on the other shards has closed. Disjoint
//!   transfers land on different shards and share no state, no
//!   ledgers, and (in concurrent embeddings) no locks.
//! * **Southbound messages** demux by op-id residue: shard `s` of `N`
//!   allocates ids `≡ s + 1 (mod N)`, so ownership is `(id - 1) % N` —
//!   O(1) arithmetic, nothing shared. Op-less introspection events
//!   route via the subscription table; anything unattributable is
//!   broadcast (non-owners drop it).
//!
//! With `config.shards == 1` (the default) the facade is byte-for-byte
//! the pre-sharding controller: same op ids, same action order, same
//! timelines — which is what keeps the seeded conformance corpus and
//! every existing embedding valid. The facade itself stays `Clone` so
//! `ControllerNode`'s crash journal snapshots routing state and shard
//! state together.
//!
//! Concurrency note: this type is single-threaded by design (the sim
//! embedding must stay deterministic). Real-thread parallelism over the
//! same shards lives in [`crate::parallel::ShardedController`], which
//! wraps each shard in its own lock so disjoint shards never contend.

use openmb_obs::{NodeTag, Recorder, SpanEvent};
use openmb_simnet::SimTime;
use openmb_types::wire::{EventFilter, Message};
use openmb_types::{ConfigValue, HeaderFieldList, HierarchicalKey, MbId, OpId};

use crate::router::{Admission, Route, ShardRouter};
pub use crate::shard::{
    Action, Completion, ControllerConfig, ControllerShard, TransferKind, TransferLedgerStats,
};

/// The sharded controller: the facade embeddings drive.
///
/// `Clone` so embeddings can journal a snapshot of the whole machine
/// (shards *and* router) and restore it after a controller crash
/// without replaying the message history.
#[derive(Clone)]
pub struct ControllerCore {
    shards: Vec<ControllerShard>,
    router: ShardRouter,
    /// Tunables. Mutating this after construction propagates to every
    /// shard on the next call into the core — except `shards`, which is
    /// structural and read once by [`ControllerCore::new`].
    pub config: ControllerConfig,
}

impl ControllerCore {
    /// A controller with the given tunables; `config.shards` (clamped
    /// to at least 1) fixes the shard count for the core's lifetime.
    pub fn new(config: ControllerConfig) -> Self {
        let n = config.shards.max(1) as usize;
        let shards = (0..n)
            .map(|s| ControllerShard::with_op_space(config, s as u64 + 1, n as u64))
            .collect();
        ControllerCore { shards, router: ShardRouter::new(n), config }
    }

    /// Number of shards this core runs.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Immutable view of one shard (metrics, tests).
    pub fn shard(&self, s: usize) -> &ControllerShard {
        &self.shards[s]
    }

    /// The shard that owns operation `op` (by op-id residue).
    pub fn shard_of_op(&self, op: OpId) -> usize {
        self.router.shard_of_op(op)
    }

    /// The shard an incoming southbound message will be delivered to —
    /// embeddings that model per-shard service (the sim's
    /// `ControllerNode` work queues) use this to pick the queue.
    /// Broadcast messages are accounted to shard 0.
    pub fn shard_of_message(&self, from: MbId, msg: &Message) -> usize {
        match self.router.route_message(from, msg) {
            Route::Shard(s) => s,
            Route::Broadcast => 0,
        }
    }

    /// Push the (possibly mutated) facade config down to every shard.
    /// `ControllerConfig` is `Copy`, so this is a handful of word moves
    /// per call — the price of keeping `core.config.field = x` working
    /// exactly as it did pre-sharding.
    fn sync_config(&mut self) {
        for sh in &mut self.shards {
            sh.config = self.config;
        }
    }

    /// Install a flight recorder. "controller" is registered once and
    /// the tag shared across shards, so a sharded run still renders as
    /// one controller column in the op timeline.
    pub fn set_recorder(&mut self, rec: Recorder) {
        let tag = rec.register("controller");
        for sh in &mut self.shards {
            sh.set_recorder_with_tag(rec.clone(), tag);
        }
    }

    /// The installed flight recorder handle (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        self.shards[0].recorder()
    }

    /// The node tag this core records under.
    pub fn recorder_tag(&self) -> NodeTag {
        self.shards[0].recorder_tag()
    }

    /// Register a middlebox; returns its handle. Every shard learns of
    /// every MB (registration is control-plane metadata, not per-shard
    /// state).
    pub fn register_mb(&mut self) -> MbId {
        let mut id = None;
        for sh in &mut self.shards {
            let got = sh.register_mb();
            debug_assert!(id.is_none_or(|i| i == got));
            id = Some(got);
        }
        id.expect("at least one shard")
    }

    // ------------------------------------------------------------------
    // Northbound operations
    // ------------------------------------------------------------------

    /// `readConfig` — routed by MB hash; simple requests carry no
    /// flowspace and need no conflict entry.
    pub fn read_config(
        &mut self,
        src: MbId,
        key: HierarchicalKey,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.sync_config();
        let s = self.router.route_simple(src);
        self.shards[s].read_config(src, key, now, out)
    }

    /// `writeConfig`.
    pub fn write_config(
        &mut self,
        dst: MbId,
        key: HierarchicalKey,
        values: Vec<ConfigValue>,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.sync_config();
        let s = self.router.route_simple(dst);
        self.shards[s].write_config(dst, key, values, now, out)
    }

    /// `delConfig`.
    pub fn del_config(
        &mut self,
        dst: MbId,
        key: HierarchicalKey,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.sync_config();
        let s = self.router.route_simple(dst);
        self.shards[s].del_config(dst, key, now, out)
    }

    /// `stats`.
    pub fn stats(
        &mut self,
        src: MbId,
        key: HeaderFieldList,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.sync_config();
        let s = self.router.route_simple(src);
        self.shards[s].stats(src, key, now, out)
    }

    /// `enableEvents` — the owning shard is recorded so op-less
    /// introspection events from this MB route to the shard holding the
    /// subscription.
    pub fn enable_events(
        &mut self,
        mb: MbId,
        filter: EventFilter,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.sync_config();
        let s = self.router.route_simple(mb);
        self.router.note_subscription(mb, s);
        self.shards[s].enable_events(mb, filter, now, out)
    }

    /// `moveInternal` — admitted through the conflict detector.
    pub fn move_internal(
        &mut self,
        src: MbId,
        dst: MbId,
        key: HeaderFieldList,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.admit_transfer(TransferKind::Move, key, src, dst, now, out)
    }

    /// `cloneSupport` — transfers *all* support state, so its conflict
    /// flowspace is the wildcard pattern.
    pub fn clone_support(
        &mut self,
        src: MbId,
        dst: MbId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.admit_transfer(TransferKind::Clone, HeaderFieldList::any(), src, dst, now, out)
    }

    /// `mergeInternal` — wildcard flowspace, like clone.
    pub fn merge_internal(
        &mut self,
        src: MbId,
        dst: MbId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.admit_transfer(TransferKind::Merge, HeaderFieldList::any(), src, dst, now, out)
    }

    /// Shared transfer-admission path: prune the conflict table, ask
    /// the router for a verdict, then either run the op on its shard or
    /// — when the conflict set spans several shards — reserve it there
    /// and queue it behind its cross-shard blockers. Either way the
    /// flowspace registers as live, so later admissions serialize
    /// against the op from the moment its id exists.
    fn admit_transfer(
        &mut self,
        kind: TransferKind,
        pattern: HeaderFieldList,
        src: MbId,
        dst: MbId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.sync_config();
        let shards = &self.shards;
        self.router.prune(|shard, op| shards[shard].op_closed(op));
        let (s, pinned, blockers) = match self.router.admit(&pattern, src, dst) {
            Admission::Run { shard, pinned } => (shard, pinned, Vec::new()),
            Admission::Defer { shard, blockers } => (shard, true, blockers),
        };
        let op = if blockers.is_empty() {
            match kind {
                TransferKind::Move => self.shards[s].move_internal(src, dst, pattern, now, out),
                TransferKind::Clone => self.shards[s].clone_support(src, dst, now, out),
                TransferKind::Merge => self.shards[s].merge_internal(src, dst, now, out),
            }
        } else {
            self.shards[s].reserve_transfer(kind, src, dst, pattern, now, out)
        };
        let sh = &self.shards[s];
        sh.recorder().record(
            now.0,
            sh.recorder_tag(),
            Some(op.0),
            None,
            SpanEvent::OpRouted { shard: s as u32, pinned },
        );
        self.router.register_transfer(op, pattern, src, dst, s);
        if !blockers.is_empty() && !self.shards[s].op_closed(op) {
            // op_closed here means validation failed fast: the op is
            // already terminal and must never sit in the release queue.
            self.router.push_deferred(op, s, blockers);
        }
        // Admission pruned the conflict table; that may have been the
        // last close an earlier deferral was waiting on.
        self.release_deferred(now, out);
        op
    }

    /// Release reserved transfers whose cross-shard blockers have all
    /// closed. Runs after every state-advancing entry point; one
    /// branch when nothing is deferred (the overwhelmingly common
    /// case), a sweep over the queue otherwise.
    fn release_deferred(&mut self, now: SimTime, out: &mut Vec<Action>) {
        if !self.router.has_deferred() {
            return;
        }
        let shards = &self.shards;
        let ready = self.router.drain_releasable(|shard, op| shards[shard].op_closed(op));
        for (shard, op) in ready {
            self.shards[shard].release_transfer(op, now, out);
        }
    }

    /// `endOp`. (Carries no timestamp, so any deferral this unblocks is
    /// released by the next timestamped entry point — tick or message.)
    pub fn end_op(&mut self, op: OpId, out: &mut Vec<Action>) {
        self.sync_config();
        let s = self.router.shard_of_op(op);
        self.shards[s].end_op(op, out);
    }

    // ------------------------------------------------------------------
    // Southbound
    // ------------------------------------------------------------------

    /// Process one message arriving from middlebox `from`, delivering
    /// it to the owning shard (or all shards, for the rare
    /// unattributable message). Batch frames are unpacked here so each
    /// inner message routes independently.
    pub fn handle_mb_message(
        &mut self,
        from: MbId,
        msg: Message,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        self.sync_config();
        if matches!(msg, Message::Batch { .. }) {
            msg.for_each_unbatched(|m| self.handle_mb_message(from, m, now, out));
            return;
        }
        match self.router.route_message(from, &msg) {
            Route::Shard(s) => self.shards[s].handle_mb_message(from, msg, now, out),
            Route::Broadcast => {
                for sh in &mut self.shards {
                    sh.handle_mb_message(from, msg.clone(), now, out);
                }
            }
        }
        // The message may have closed the last blocker of a deferral
        // (final delete ack, terminal op ack).
        self.release_deferred(now, out);
    }

    /// An MB became unreachable: every shard may hold ops touching it,
    /// so all of them must park/abort — correctness over hot-path cost
    /// (reachability changes are rare).
    pub fn mark_unreachable(&mut self, mb: MbId, now: SimTime, out: &mut Vec<Action>) {
        self.sync_config();
        for sh in &mut self.shards {
            sh.mark_unreachable(mb, now, out);
        }
        // Aborted blockers count as closed; swept/released here.
        self.release_deferred(now, out);
    }

    /// An MB came back: broadcast, mirroring `mark_unreachable`.
    pub fn mark_reachable(&mut self, mb: MbId, now: SimTime, out: &mut Vec<Action>) {
        self.sync_config();
        for sh in &mut self.shards {
            sh.mark_reachable(mb, now, out);
        }
        self.release_deferred(now, out);
    }

    /// Is `mb` currently marked unreachable? (The set is broadcast, so
    /// any shard can answer.)
    pub fn is_unreachable(&self, mb: MbId) -> bool {
        self.shards[0].is_unreachable(mb)
    }

    /// Periodic maintenance, shard by shard in index order — the order
    /// is fixed so a seeded sim run replays byte-identically.
    pub fn tick(&mut self, now: SimTime, out: &mut Vec<Action>) {
        self.sync_config();
        for sh in &mut self.shards {
            sh.tick(now, out);
        }
        // Quiescence and deadline aborts close ops: the sweep that
        // eventually releases any deferral, whatever else happens.
        self.release_deferred(now, out);
    }

    // ------------------------------------------------------------------
    // Introspection / metrics
    // ------------------------------------------------------------------

    /// Operations not yet quiesced plus actively re-delivered deletes,
    /// across all shards.
    pub fn open_ops(&self) -> usize {
        self.shards.iter().map(|s| s.open_ops()).sum()
    }

    /// Southbound messages brokered, across all shards.
    pub fn messages_handled(&self) -> u64 {
        self.shards.iter().map(|s| s.messages_handled).sum()
    }

    /// Peak reprocess-event buffer depth observed on any one shard.
    pub fn events_buffered_peak(&self) -> usize {
        self.shards.iter().map(|s| s.events_buffered_peak).max().unwrap_or(0)
    }

    /// Events forwarded under an operation (experiments).
    pub fn events_forwarded(&self, op: OpId) -> u64 {
        self.shards[self.router.shard_of_op(op)].events_forwarded(op)
    }

    /// Total chunks transferred under an operation (experiments).
    pub fn chunks_moved(&self, op: OpId) -> usize {
        self.shards[self.router.shard_of_op(op)].chunks_moved(op)
    }

    /// Transfer-ledger snapshot for `op`: per-op fields from the owning
    /// shard; cache counters summed across shards; `in_flight_peak` is
    /// the largest any single shard saw (each shard's ledger is
    /// independently window-bounded, which is the invariant the
    /// conformance suite asserts).
    pub fn transfer_ledger_stats(&self, op: OpId) -> TransferLedgerStats {
        let mut merged = self.shards[self.router.shard_of_op(op)].transfer_ledger_stats(op);
        merged.in_flight_peak = 0;
        merged.cache_hits = 0;
        merged.cache_misses = 0;
        merged.bodies_sent = 0;
        merged.bytes_saved = 0;
        for sh in &self.shards {
            let s = sh.transfer_ledger_stats(op);
            merged.in_flight_peak = merged.in_flight_peak.max(s.in_flight_peak);
            merged.cache_hits += s.cache_hits;
            merged.cache_misses += s.cache_misses;
            merged.bodies_sent += s.bodies_sent;
            merged.bytes_saved += s.bytes_saved;
        }
        merged
    }

    /// Live transfers currently pinned in the router's conflict table
    /// (diagnostics; shrinks lazily on the next admission).
    pub fn active_transfers(&self) -> usize {
        self.router.active_transfers()
    }

    /// Transfers reserved under a cross-shard conflict and still
    /// awaiting release (diagnostics, tests).
    pub fn deferred_transfers(&self) -> usize {
        self.router.deferred_transfers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmb_simnet::SimTime;
    use openmb_types::IpPrefix;
    use std::net::Ipv4Addr;

    /// Two-sided subnet pattern — flows staying inside `10.b.0.0/16`,
    /// the disjoint-tenant flowspace shape the bench uses.
    fn subnet(b: u8) -> HeaderFieldList {
        let p = IpPrefix::new(Ipv4Addr::new(10, b, 0, 0), 16);
        HeaderFieldList { nw_src: p, nw_dst: p, ..HeaderFieldList::any() }
    }

    fn sharded(n: u32) -> (ControllerCore, MbId, MbId, MbId, MbId) {
        let mut core =
            ControllerCore::new(ControllerConfig { shards: n, ..ControllerConfig::default() });
        let a = core.register_mb();
        let b = core.register_mb();
        let c = core.register_mb();
        let d = core.register_mb();
        (core, a, b, c, d)
    }

    #[test]
    fn single_shard_alloc_matches_legacy_sequence() {
        let (mut core, a, b, _, _) = sharded(1);
        let mut out = Vec::new();
        let op1 = core.move_internal(a, b, subnet(0), SimTime(0), &mut out);
        assert_eq!(core.shard_of_op(op1), 0);
        // Shard 0 of 1 allocates 1, 2, 3, … — op 1 plus its sub-ops,
        // exactly the pre-sharding id stream.
        assert_eq!(op1, OpId(1));
    }

    #[test]
    fn disjoint_moves_get_disjoint_op_residues() {
        let mut core =
            ControllerCore::new(ControllerConfig { shards: 4, ..ControllerConfig::default() });
        let mbs: Vec<MbId> = (0..8).map(|_| core.register_mb()).collect();
        let mut out = Vec::new();
        // Four disjoint-subnet moves on four disjoint MB pairs: none
        // conflict, so placement is pure hash and must actually spread
        // over more than one shard (ledger disjointness is what the
        // multi-op bench's speedup rests on).
        let shards: std::collections::HashSet<usize> = (0..4usize)
            .map(|i| {
                let op = core.move_internal(
                    mbs[2 * i],
                    mbs[2 * i + 1],
                    subnet(i as u8),
                    SimTime(0),
                    &mut out,
                );
                assert_eq!((op.0 - 1) % 4, core.shard_of_op(op) as u64);
                core.shard_of_op(op)
            })
            .collect();
        assert!(shards.len() > 1, "disjoint moves must parallelize: {shards:?}");
    }

    #[test]
    fn overlapping_move_is_pinned_to_the_live_ops_shard() {
        let (mut core, a, b, c, _) = sharded(4);
        let mut out = Vec::new();
        let op1 = core.move_internal(a, b, subnet(0), SimTime(0), &mut out);
        // Same flowspace on a pair sharing MB `b`: must serialize on
        // op1's shard regardless of its own hash.
        let op2 = core.move_internal(b, c, subnet(0), SimTime(0), &mut out);
        assert_eq!(core.shard_of_op(op1), core.shard_of_op(op2));
        assert_eq!(core.active_transfers(), 2);
    }

    #[test]
    fn bridging_clone_defers_then_releases_when_its_blocker_closes() {
        let mut core =
            ControllerCore::new(ControllerConfig { shards: 4, ..ControllerConfig::default() });
        let mbs: Vec<MbId> = (0..8).map(|_| core.register_mb()).collect();
        // Two disjoint moves whose hash placements differ (such a pair
        // exists: the bench subnets spread over more than one shard).
        let place =
            |i: usize| ShardRouter::hash_placement(4, &subnet(i as u8), mbs[2 * i], mbs[2 * i + 1]);
        let (i, j) = (0..4)
            .flat_map(|a| (0..4).map(move |b| (a, b)))
            .find(|&(a, b)| a != b && place(a) != place(b))
            .expect("bench subnets spread over more than one shard");
        let mut out = Vec::new();
        let op_a =
            core.move_internal(mbs[2 * i], mbs[2 * i + 1], subnet(i as u8), SimTime(0), &mut out);
        out.clear();
        let op_b =
            core.move_internal(mbs[2 * j], mbs[2 * j + 1], subnet(j as u8), SimTime(0), &mut out);
        assert_ne!(core.shard_of_op(op_a), core.shard_of_op(op_b));
        let subs_b: Vec<OpId> = out
            .iter()
            .filter_map(|a| match a {
                Action::ToMb(_, Message::GetSupportPerflow { op, .. })
                | Action::ToMb(_, Message::GetReportPerflow { op, .. }) => Some(*op),
                _ => None,
            })
            .collect();
        assert_eq!(subs_b.len(), 2);
        out.clear();
        // A wildcard clone bridging one endpoint of each live move
        // conflicts on two shards at once: it must reserve without any
        // southbound traffic, on the earliest conflicting op's shard.
        let op_c = core.clone_support(mbs[2 * i + 1], mbs[2 * j], SimTime(0), &mut out);
        assert!(
            out.iter().all(|a| !matches!(a, Action::ToMb(..))),
            "a deferred transfer must emit no southbound traffic: {out:?}"
        );
        assert_eq!(core.deferred_transfers(), 1);
        assert_eq!(core.shard_of_op(op_c), core.shard_of_op(op_a));
        out.clear();
        // Close the blocking move (op_b, the one on the other shard):
        // empty get streams complete it...
        let src_b = mbs[2 * j];
        let t1 = SimTime(1_000_000);
        for sub in &subs_b {
            core.handle_mb_message(src_b, Message::GetAck { op: *sub, count: 0 }, t1, &mut out);
        }
        // ...but completed-not-quiesced still owes deletes: not closed.
        assert_eq!(core.deferred_transfers(), 1);
        out.clear();
        // Quiescence (500ms after last activity) emits the source-side
        // deletes; the op stays open until they are acked.
        core.tick(SimTime(601_000_000), &mut out);
        let dels: Vec<OpId> = out
            .iter()
            .filter_map(|a| match a {
                Action::ToMb(_, Message::DelSupportPerflow { op, .. })
                | Action::ToMb(_, Message::DelReportPerflow { op, .. }) => Some(*op),
                _ => None,
            })
            .collect();
        assert_eq!(dels.len(), 2);
        assert_eq!(core.deferred_transfers(), 1);
        out.clear();
        // Acking both deletes fully closes op_b; the release fires
        // inside the same handle_mb_message call and the clone finally
        // issues its shared get — with op_a still live on its own
        // shard, where FIFO ordering serializes the remaining conflict.
        core.handle_mb_message(
            src_b,
            Message::OpAck { op: dels[0] },
            SimTime(602_000_000),
            &mut out,
        );
        core.handle_mb_message(
            src_b,
            Message::OpAck { op: dels[1] },
            SimTime(603_000_000),
            &mut out,
        );
        assert_eq!(core.deferred_transfers(), 0);
        let gets: Vec<&Action> = out
            .iter()
            .filter(|a| matches!(a, Action::ToMb(_, Message::GetSupportShared { .. })))
            .collect();
        assert_eq!(gets.len(), 1, "released clone must issue its shared get: {out:?}");
    }

    #[test]
    fn config_mutations_reach_shards_on_next_call() {
        let (mut core, a, b, _, _) = sharded(2);
        core.config.transfer_window = 7;
        let mut out = Vec::new();
        core.move_internal(a, b, subnet(0), SimTime(0), &mut out);
        for s in 0..core.num_shards() {
            assert_eq!(core.shard(s).config.transfer_window, 7);
        }
    }
}

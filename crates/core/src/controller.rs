//! The MB controller (§5), sharded: N independent operation streams
//! behind the single-controller API.
//!
//! [`ControllerCore`] is the facade every embedding talks to. It owns
//! `config.shards` [`ControllerShard`]s — each a complete pure state
//! machine with its own op table, transfer ledgers, ack sets, and
//! pending-delete ledger — plus the [`ShardRouter`] that decides, per
//! operation, which shard runs it:
//!
//! * **Transfers** (`moveInternal`, `cloneSupport`, `mergeInternal`)
//!   hash `(flowspace, MB pair)` to a shard, unless they *conflict*
//!   with a live transfer — share a middlebox and have flowspaces that
//!   can select a common flow (direction-insensitively) — in which
//!   case they are pinned to that transfer's shard, where per-shard
//!   FIFO ordering serializes them. A transfer whose conflict set
//!   spans *several* shards (a bridging op between two disjoint live
//!   transfers) cannot be serialized by any placement: it is reserved
//!   on the earliest conflicting op's shard with no southbound
//!   traffic, and released — its gets finally issued — once every
//!   conflicting op on the other shards has closed. Disjoint
//!   transfers land on different shards and share no state, no
//!   ledgers, and (in concurrent embeddings) no locks.
//! * **Southbound messages** demux by op-id residue: shard `s` of `N`
//!   allocates ids `≡ s + 1 (mod N)`, so ownership is `(id - 1) % N` —
//!   O(1) arithmetic, nothing shared. Op-less introspection events
//!   route via the subscription table; anything unattributable is
//!   broadcast (non-owners drop it).
//!
//! With `config.shards == 1` (the default) the facade is byte-for-byte
//! the pre-sharding controller: same op ids, same action order, same
//! timelines — which is what keeps the seeded conformance corpus and
//! every existing embedding valid. The facade itself stays `Clone` so
//! `ControllerNode`'s crash journal snapshots routing state and shard
//! state together.
//!
//! Concurrency note: this type is single-threaded by design (the sim
//! embedding must stay deterministic). Real-thread parallelism over the
//! same shards lives in [`crate::parallel::ShardedController`], which
//! wraps each shard in its own lock so disjoint shards never contend.

use openmb_obs::{HealthSnapshot, LedgerHealth, NodeTag, Recorder, ShardHealth, SpanEvent};
use openmb_simnet::SimTime;
use openmb_types::wire::{EventFilter, Message};
use openmb_types::{ConfigValue, Error, HeaderFieldList, HierarchicalKey, MbId, OpId};

use crate::chain::{is_chain_op, ChainPhase, ChainRun, ChainSpec, ChainStatus, CHAIN_OP_BASE};
use crate::router::{Admission, Route, ShardRouter};
pub use crate::shard::{
    Action, Completion, ControllerConfig, ControllerShard, TransferKind, TransferLedgerStats,
};

/// The sharded controller: the facade embeddings drive.
///
/// `Clone` so embeddings can journal a snapshot of the whole machine
/// (shards *and* router) and restore it after a controller crash
/// without replaying the message history.
#[derive(Clone)]
pub struct ControllerCore {
    shards: Vec<ControllerShard>,
    router: ShardRouter,
    /// Live chain transactions ([`ControllerCore::chain_move`]);
    /// terminal chains are removed as their completion is emitted.
    chains: Vec<ChainRun>,
    /// Next chain id offset above [`CHAIN_OP_BASE`].
    next_chain: u64,
    /// Tunables. Mutating this after construction propagates to every
    /// shard on the next call into the core — except `shards`, which is
    /// structural and read once by [`ControllerCore::new`].
    pub config: ControllerConfig,
}

/// Has `(shard, op)` fully closed, chain-aware: chain ids close when
/// the chain transaction leaves the table; shard ops answer via
/// [`ControllerShard::op_closed`]. Every router prune/release sweep
/// must go through this — a shard answers `true` for *unknown* ops, so
/// asking it about a live chain id would free a deferral early.
fn op_or_chain_closed(
    shards: &[ControllerShard],
    chains: &[ChainRun],
    shard: usize,
    op: OpId,
) -> bool {
    if is_chain_op(op) {
        !chains.iter().any(|c| c.id == op)
    } else {
        shards[shard].op_closed(op)
    }
}

impl ControllerCore {
    /// A controller with the given tunables; `config.shards` (clamped
    /// to at least 1) fixes the shard count for the core's lifetime.
    pub fn new(config: ControllerConfig) -> Self {
        let n = config.shards.max(1) as usize;
        let shards = (0..n)
            .map(|s| ControllerShard::with_op_space(config, s as u64 + 1, n as u64))
            .collect();
        ControllerCore {
            shards,
            router: ShardRouter::new(n),
            chains: Vec::new(),
            next_chain: 0,
            config,
        }
    }

    /// Number of shards this core runs.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Immutable view of one shard (metrics, tests).
    pub fn shard(&self, s: usize) -> &ControllerShard {
        &self.shards[s]
    }

    /// The shard that owns operation `op` (by op-id residue).
    pub fn shard_of_op(&self, op: OpId) -> usize {
        self.router.shard_of_op(op)
    }

    /// The shard an incoming southbound message will be delivered to —
    /// embeddings that model per-shard service (the sim's
    /// `ControllerNode` work queues) use this to pick the queue.
    /// Broadcast messages are accounted to shard 0.
    pub fn shard_of_message(&self, from: MbId, msg: &Message) -> usize {
        match self.router.route_message(from, msg) {
            Route::Shard(s) => s,
            Route::Broadcast => 0,
        }
    }

    /// Push the (possibly mutated) facade config down to every shard.
    /// `ControllerConfig` is `Copy`, so this is a handful of word moves
    /// per call — the price of keeping `core.config.field = x` working
    /// exactly as it did pre-sharding.
    fn sync_config(&mut self) {
        for sh in &mut self.shards {
            sh.config = self.config;
        }
    }

    /// Install a flight recorder. "controller" is registered once and
    /// the tag shared across shards, so a sharded run still renders as
    /// one controller column in the op timeline.
    pub fn set_recorder(&mut self, rec: Recorder) {
        let tag = rec.register("controller");
        for sh in &mut self.shards {
            sh.set_recorder_with_tag(rec.clone(), tag);
        }
    }

    /// The installed flight recorder handle (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        self.shards[0].recorder()
    }

    /// The node tag this core records under.
    pub fn recorder_tag(&self) -> NodeTag {
        self.shards[0].recorder_tag()
    }

    /// Register a middlebox; returns its handle. Every shard learns of
    /// every MB (registration is control-plane metadata, not per-shard
    /// state).
    pub fn register_mb(&mut self) -> MbId {
        let mut id = None;
        for sh in &mut self.shards {
            let got = sh.register_mb();
            debug_assert!(id.is_none_or(|i| i == got));
            id = Some(got);
        }
        id.expect("at least one shard")
    }

    // ------------------------------------------------------------------
    // Northbound operations
    // ------------------------------------------------------------------

    /// `readConfig` — routed by MB hash; simple requests carry no
    /// flowspace and need no conflict entry.
    pub fn read_config(
        &mut self,
        src: MbId,
        key: HierarchicalKey,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.sync_config();
        let s = self.router.route_simple(src);
        self.shards[s].read_config(src, key, now, out)
    }

    /// `writeConfig`.
    pub fn write_config(
        &mut self,
        dst: MbId,
        key: HierarchicalKey,
        values: Vec<ConfigValue>,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.sync_config();
        let s = self.router.route_simple(dst);
        self.shards[s].write_config(dst, key, values, now, out)
    }

    /// `delConfig`.
    pub fn del_config(
        &mut self,
        dst: MbId,
        key: HierarchicalKey,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.sync_config();
        let s = self.router.route_simple(dst);
        self.shards[s].del_config(dst, key, now, out)
    }

    /// `stats`.
    pub fn stats(
        &mut self,
        src: MbId,
        key: HeaderFieldList,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.sync_config();
        let s = self.router.route_simple(src);
        self.shards[s].stats(src, key, now, out)
    }

    /// `enableEvents` — the owning shard is recorded so op-less
    /// introspection events from this MB route to the shard holding the
    /// subscription.
    pub fn enable_events(
        &mut self,
        mb: MbId,
        filter: EventFilter,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.sync_config();
        let s = self.router.route_simple(mb);
        self.router.note_subscription(mb, s);
        self.shards[s].enable_events(mb, filter, now, out)
    }

    /// `moveInternal` — admitted through the conflict detector.
    pub fn move_internal(
        &mut self,
        src: MbId,
        dst: MbId,
        key: HeaderFieldList,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.admit_transfer(TransferKind::Move, key, src, dst, now, out)
    }

    /// `cloneSupport` — transfers *all* support state, so its conflict
    /// flowspace is the wildcard pattern.
    pub fn clone_support(
        &mut self,
        src: MbId,
        dst: MbId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.admit_transfer(TransferKind::Clone, HeaderFieldList::any(), src, dst, now, out)
    }

    /// `mergeInternal` — wildcard flowspace, like clone.
    pub fn merge_internal(
        &mut self,
        src: MbId,
        dst: MbId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.admit_transfer(TransferKind::Merge, HeaderFieldList::any(), src, dst, now, out)
    }

    /// Run `spec` as one chain-wide atomic move (see [`crate::chain`]):
    /// ordered per-hop transfers of the flow group across every MB
    /// pair in the chain, committing with [`Completion::ChainComplete`]
    /// only when ALL hops complete, and compensating completed hops
    /// with reverse moves — restoring the byte-identical pre-move
    /// image — if any hop fails. The returned id lives in the chain
    /// namespace above [`CHAIN_OP_BASE`]; per-hop moves run as ordinary
    /// shard ops under it.
    ///
    /// Admission is whole-chain: every hop registers in the conflict
    /// table (all on one shard) before hop 0 issues, so overlapping
    /// admissions — single transfers or other chains, whatever their
    /// hop order — serialize behind the entire chain rather than
    /// interleaving with it hop by hop.
    pub fn chain_move(&mut self, spec: ChainSpec, now: SimTime, out: &mut Vec<Action>) -> OpId {
        self.sync_config();
        let start = out.len();
        let id = OpId(CHAIN_OP_BASE + self.next_chain);
        self.next_chain += 1;
        if spec.hops.is_empty() {
            out.push(Action::Notify(Completion::Failed {
                op: id,
                error: Error::OpFailed("chain move with no hops".into()),
                dropped_events: 0,
            }));
            return id;
        }
        // Hops must be pairwise MB-disjoint: a chain is one position per
        // middlebox pair. Overlapping pairs would make hop k+1 pick up
        // state hop k just delivered — a pipeline, not a transaction.
        let mut mbs: Vec<MbId> = spec.hops.iter().flat_map(|h| [h.src, h.dst]).collect();
        mbs.sort_unstable();
        mbs.dedup();
        if mbs.len() != spec.hops.len() * 2 {
            out.push(Action::Notify(Completion::Failed {
                op: id,
                error: Error::OpFailed("chain hops must use disjoint middlebox pairs".into()),
                dropped_events: 0,
            }));
            return id;
        }
        let entries = spec.router_entries();
        let (shards, chains) = (&self.shards, &self.chains);
        self.router.prune(|shard, op| op_or_chain_closed(shards, chains, shard, op));
        let (shard, pinned, blockers) = match self.router.admit_chain(&entries) {
            Admission::Run { shard, pinned } => (shard, pinned, Vec::new()),
            Admission::Defer { shard, blockers } => (shard, true, blockers),
        };
        self.router.register_chain(id, &entries, shard);
        let sh = &self.shards[shard];
        sh.recorder().record(
            now.0,
            sh.recorder_tag(),
            Some(id.0),
            None,
            SpanEvent::OpRouted { shard: shard as u32, pinned },
        );
        let deferred = !blockers.is_empty();
        self.chains.push(ChainRun {
            id,
            spec,
            shard,
            // Placeholder phase; replaced below (Deferred) or by
            // issue_hop (Forward).
            phase: ChainPhase::Deferred { blockers },
            chunks_moved: 0,
            hop_ops: Vec::new(),
            aux_ops: Vec::new(),
            error: None,
            dropped_events: 0,
        });
        if !deferred {
            let ci = self.chains.len() - 1;
            self.issue_hop(ci, 0, now, out);
        }
        // Hop 0 may have failed fast (dead endpoint): consume the
        // completion and settle the chain in the same call.
        self.advance_chains(now, out, start, false);
        id
    }

    /// Issue the forward move of hop `hop` for chain `ci`, directly on
    /// the chain's shard. The router is NOT consulted: the chain's own
    /// conflict entries already cover this hop's exact footprint, so
    /// anything that could conflict with the hop is either pinned to
    /// this same shard (FIFO-serialized) or parked as a reservation
    /// that emits no traffic until the chain closes.
    fn issue_hop(&mut self, ci: usize, hop: usize, now: SimTime, out: &mut Vec<Action>) {
        let (shard, pattern, h) =
            (self.chains[ci].shard, self.chains[ci].spec.pattern, self.chains[ci].spec.hops[hop]);
        let op = self.shards[shard].move_internal(h.src, h.dst, pattern, now, out);
        let sh = &self.shards[shard];
        sh.recorder().record(
            now.0,
            sh.recorder_tag(),
            Some(op.0),
            None,
            SpanEvent::OpRouted { shard: shard as u32, pinned: true },
        );
        sh.recorder().record(
            now.0,
            sh.recorder_tag(),
            Some(self.chains[ci].id.0),
            None,
            SpanEvent::ChainHop { hop: hop as u32 },
        );
        let c = &mut self.chains[ci];
        c.phase = ChainPhase::Forward { hop, op };
        c.hop_ops.push(op);
    }

    /// Start undoing completed hop `undo` of chain `ci`: force-quiesce
    /// its forward op (`end_op` issues the source-side deletes NOW
    /// instead of waiting out the quiescence timer) and park the phase
    /// until that op fully closes. Issuing the reverse move before the
    /// forward op's deletes are *acked* would race them: a re-sent
    /// delete landing after the reverse move's puts would destroy the
    /// state the rollback just restored.
    fn begin_undo(&mut self, ci: usize, undo: usize, now: SimTime, out: &mut Vec<Action>) {
        let (shard, fwd) = (self.chains[ci].shard, self.chains[ci].hop_ops[undo]);
        self.shards[shard].end_op(fwd, now, out);
        let retries_left = match self.chains[ci].phase {
            ChainPhase::Rollback { retries_left, .. } => retries_left,
            _ => self.config.chain_rollback_retries,
        };
        self.chains[ci].phase = ChainPhase::Rollback { undo, op: None, retries_left, paced: false };
    }

    /// Issue the compensating reverse move (`dst → src`) of completed
    /// hop `undo` for chain `ci`. Only called once hop `undo`'s forward
    /// op has closed (see [`Self::begin_undo`]).
    fn issue_reverse(&mut self, ci: usize, undo: usize, now: SimTime, out: &mut Vec<Action>) {
        let (shard, pattern, h) =
            (self.chains[ci].shard, self.chains[ci].spec.pattern, self.chains[ci].spec.hops[undo]);
        let retries_left = match self.chains[ci].phase {
            ChainPhase::Rollback { retries_left, .. } => retries_left,
            _ => self.config.chain_rollback_retries,
        };
        let op = self.shards[shard].move_internal(h.dst, h.src, pattern, now, out);
        let fwd = self.chains[ci].hop_ops[undo];
        let sh = &self.shards[shard];
        sh.recorder().record(
            now.0,
            sh.recorder_tag(),
            Some(op.0),
            None,
            SpanEvent::OpRouted { shard: shard as u32, pinned: true },
        );
        sh.recorder().record(
            now.0,
            sh.recorder_tag(),
            Some(self.chains[ci].id.0),
            None,
            SpanEvent::ChainUndo { hop: undo as u32, undoes: fwd.0 },
        );
        self.chains[ci].aux_ops.push((undo, op));
        self.chains[ci].phase =
            ChainPhase::Rollback { undo, op: Some(op), retries_left, paced: false };
    }

    /// Remove a terminal chain and emit its completion. Hop ops (and
    /// reverse ops) that can still emit southbound traffic — pending
    /// quiescence or compensating deletes — are re-registered in the
    /// conflict table under their own ids, so later admissions on the
    /// chain's flowspace keep serializing behind the drain exactly as
    /// they would behind a single transfer's close-out.
    fn settle_chain(
        &mut self,
        ci: usize,
        completion: Completion,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        let c = self.chains.remove(ci);
        let hop_iter = c.hop_ops.iter().enumerate().map(|(hop, op)| (hop, *op));
        for (hop, op) in hop_iter.chain(c.aux_ops.iter().copied()) {
            if !self.shards[c.shard].op_closed(op) {
                let h = c.spec.hops[hop];
                self.router.register_transfer(op, c.spec.pattern, h.src, h.dst, c.shard);
            }
        }
        let sh = &self.shards[c.shard];
        match &completion {
            Completion::Failed { error, .. } => {
                let msg = error.to_string();
                sh.recorder().record_with(now.0, sh.recorder_tag(), Some(c.id.0), None, || {
                    SpanEvent::Aborted { error: msg.clone() }
                });
            }
            _ => {
                sh.recorder().record(
                    now.0,
                    sh.recorder_tag(),
                    Some(c.id.0),
                    None,
                    SpanEvent::Completed,
                );
            }
        }
        out.push(Action::Notify(completion));
    }

    /// Advance every live chain against the completions appended to
    /// `out` since `start`, to a fixpoint. Runs at the tail of every
    /// state-advancing entry point. `reissue` (true from the paced
    /// entry points: tick, reachability changes) re-attempts a
    /// rollback's reverse move that failed earlier — failures usually
    /// mean the target endpoint is down, so back-to-back retries
    /// inside one call would only burn the retry budget.
    ///
    /// Consuming completions from `out` is race-free: hop moves never
    /// complete synchronously (a move always awaits MB replies), so a
    /// completion for a chain's expected op can only appear in the
    /// region this very call appended — and once consumed, the phase's
    /// expected op changes, making the scan idempotent.
    fn advance_chains(&mut self, now: SimTime, out: &mut Vec<Action>, start: usize, reissue: bool) {
        if self.chains.is_empty() {
            return;
        }
        if reissue {
            // Un-park paced rollback retries; the fixpoint below
            // re-issues them (and anything else whose wait is over).
            for c in &mut self.chains {
                if let ChainPhase::Rollback { paced: paced @ true, op: None, .. } = &mut c.phase {
                    *paced = false;
                }
            }
        }
        let mut closed_any = false;
        'fixpoint: loop {
            // Deferred chains whose blockers have all closed start hop 0.
            for ci in 0..self.chains.len() {
                let ready = match &self.chains[ci].phase {
                    ChainPhase::Deferred { blockers } => {
                        let (shards, chains) = (&self.shards, &self.chains);
                        blockers.iter().all(|&(s, op)| op_or_chain_closed(shards, chains, s, op))
                    }
                    _ => false,
                };
                if ready {
                    self.issue_hop(ci, 0, now, out);
                    continue 'fixpoint;
                }
            }
            // Rollbacks waiting on their hop's forward op to close
            // issue the reverse move the moment the deletes are acked.
            for ci in 0..self.chains.len() {
                if let ChainPhase::Rollback { undo, op: None, paced: false, .. } =
                    self.chains[ci].phase
                {
                    let (shard, fwd) = (self.chains[ci].shard, self.chains[ci].hop_ops[undo]);
                    if self.shards[shard].op_closed(fwd) {
                        self.issue_reverse(ci, undo, now, out);
                        continue 'fixpoint;
                    }
                }
            }
            // One phase transition per pass: find the first completion
            // in the scan region that concludes some chain's in-flight
            // op, apply it, and rescan (the transition may append new
            // actions — a fail-fast hop, a commit notification).
            for i in start..out.len() {
                let Action::Notify(c) = &out[i] else { continue };
                let (done, failed) = match c {
                    Completion::MoveComplete { op, chunks_moved } => {
                        (Some((*op, *chunks_moved)), None)
                    }
                    Completion::Failed { op, error, dropped_events } => {
                        (None, Some((*op, error.clone(), *dropped_events)))
                    }
                    _ => continue,
                };
                if let Some((op, chunks)) = done {
                    for ci in 0..self.chains.len() {
                        match self.chains[ci].phase {
                            ChainPhase::Forward { hop, op: expect } if expect == op => {
                                self.chains[ci].chunks_moved += chunks;
                                if hop + 1 < self.chains[ci].spec.hops.len() {
                                    self.issue_hop(ci, hop + 1, now, out);
                                } else {
                                    let completion = Completion::ChainComplete {
                                        op: self.chains[ci].id,
                                        hops: self.chains[ci].spec.hops.len(),
                                        chunks_moved: self.chains[ci].chunks_moved,
                                    };
                                    self.settle_chain(ci, completion, now, out);
                                    closed_any = true;
                                }
                                continue 'fixpoint;
                            }
                            ChainPhase::Rollback { undo, op: Some(expect), .. } if expect == op => {
                                if undo == 0 {
                                    let completion = Completion::Failed {
                                        op: self.chains[ci].id,
                                        error: self.chains[ci].error.clone().unwrap_or_else(|| {
                                            Error::OpFailed("chain hop failed".into())
                                        }),
                                        dropped_events: self.chains[ci].dropped_events,
                                    };
                                    self.settle_chain(ci, completion, now, out);
                                    closed_any = true;
                                } else {
                                    self.begin_undo(ci, undo - 1, now, out);
                                }
                                continue 'fixpoint;
                            }
                            _ => {}
                        }
                    }
                }
                if let Some((op, error, dropped)) = failed {
                    for ci in 0..self.chains.len() {
                        match self.chains[ci].phase {
                            ChainPhase::Forward { hop, op: expect } if expect == op => {
                                self.chains[ci].error = Some(error);
                                self.chains[ci].dropped_events += dropped;
                                if hop == 0 {
                                    // Nothing completed: abort clean.
                                    let completion = Completion::Failed {
                                        op: self.chains[ci].id,
                                        error: self.chains[ci].error.clone().expect("just set"),
                                        dropped_events: self.chains[ci].dropped_events,
                                    };
                                    self.settle_chain(ci, completion, now, out);
                                    closed_any = true;
                                } else {
                                    self.chains[ci].phase = ChainPhase::Rollback {
                                        undo: hop - 1,
                                        op: None,
                                        retries_left: self.config.chain_rollback_retries,
                                        paced: false,
                                    };
                                    // Force-quiesce the completed hop;
                                    // its close gates the reverse move.
                                    self.begin_undo(ci, hop - 1, now, out);
                                }
                                continue 'fixpoint;
                            }
                            ChainPhase::Rollback {
                                undo, op: Some(expect), retries_left, ..
                            } if expect == op => {
                                self.chains[ci].dropped_events += dropped;
                                if retries_left == 0 {
                                    let completion = Completion::Failed {
                                        op: self.chains[ci].id,
                                        error: Error::OpFailed("chain rollback incomplete".into()),
                                        dropped_events: self.chains[ci].dropped_events,
                                    };
                                    self.settle_chain(ci, completion, now, out);
                                    closed_any = true;
                                } else {
                                    // Park; a paced entry point
                                    // (tick / reachability) retries.
                                    self.chains[ci].phase = ChainPhase::Rollback {
                                        undo,
                                        op: None,
                                        retries_left: retries_left - 1,
                                        paced: true,
                                    };
                                }
                                continue 'fixpoint;
                            }
                            _ => {}
                        }
                    }
                }
            }
            break;
        }
        if closed_any {
            // A closed chain may have been the last blocker of a
            // deferred transfer (or another chain — handled above).
            self.release_deferred(now, out);
        }
    }

    /// Shared transfer-admission path: prune the conflict table, ask
    /// the router for a verdict, then either run the op on its shard or
    /// — when the conflict set spans several shards — reserve it there
    /// and queue it behind its cross-shard blockers. Either way the
    /// flowspace registers as live, so later admissions serialize
    /// against the op from the moment its id exists.
    fn admit_transfer(
        &mut self,
        kind: TransferKind,
        pattern: HeaderFieldList,
        src: MbId,
        dst: MbId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        self.sync_config();
        let start = out.len();
        let (shards, chains) = (&self.shards, &self.chains);
        self.router.prune(|shard, op| op_or_chain_closed(shards, chains, shard, op));
        let (s, pinned, blockers) = match self.router.admit(&pattern, src, dst) {
            Admission::Run { shard, pinned } => (shard, pinned, Vec::new()),
            Admission::Defer { shard, blockers } => (shard, true, blockers),
        };
        let op = if blockers.is_empty() {
            match kind {
                TransferKind::Move => self.shards[s].move_internal(src, dst, pattern, now, out),
                TransferKind::Clone => self.shards[s].clone_support(src, dst, now, out),
                TransferKind::Merge => self.shards[s].merge_internal(src, dst, now, out),
            }
        } else {
            self.shards[s].reserve_transfer(kind, src, dst, pattern, now, out)
        };
        let sh = &self.shards[s];
        sh.recorder().record(
            now.0,
            sh.recorder_tag(),
            Some(op.0),
            None,
            SpanEvent::OpRouted { shard: s as u32, pinned },
        );
        self.router.register_transfer(op, pattern, src, dst, s);
        if !blockers.is_empty() && !self.shards[s].op_closed(op) {
            // op_closed here means validation failed fast: the op is
            // already terminal and must never sit in the release queue.
            self.router.push_deferred(op, s, blockers);
        }
        // Admission pruned the conflict table; that may have been the
        // last close an earlier deferral was waiting on.
        self.release_deferred(now, out);
        self.advance_chains(now, out, start, false);
        op
    }

    /// Release reserved transfers whose cross-shard blockers have all
    /// closed. Runs after every state-advancing entry point; one
    /// branch when nothing is deferred (the overwhelmingly common
    /// case), a sweep over the queue otherwise.
    fn release_deferred(&mut self, now: SimTime, out: &mut Vec<Action>) {
        if !self.router.has_deferred() {
            return;
        }
        let (shards, chains) = (&self.shards, &self.chains);
        let ready =
            self.router.drain_releasable(|shard, op| op_or_chain_closed(shards, chains, shard, op));
        for (shard, op) in ready {
            self.shards[shard].release_transfer(op, now, out);
        }
    }

    /// `endOp`. (`now` timestamps the quiescence deletes this issues;
    /// any deferral this unblocks is still released by the next
    /// state-advancing entry point — tick or message.)
    pub fn end_op(&mut self, op: OpId, now: SimTime, out: &mut Vec<Action>) {
        self.sync_config();
        let s = self.router.shard_of_op(op);
        self.shards[s].end_op(op, now, out);
    }

    // ------------------------------------------------------------------
    // Southbound
    // ------------------------------------------------------------------

    /// Process one message arriving from middlebox `from`, delivering
    /// it to the owning shard (or all shards, for the rare
    /// unattributable message). Batch frames are unpacked here so each
    /// inner message routes independently.
    pub fn handle_mb_message(
        &mut self,
        from: MbId,
        msg: Message,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        self.sync_config();
        if matches!(msg, Message::Batch { .. }) {
            msg.for_each_unbatched(|m| self.handle_mb_message(from, m, now, out));
            return;
        }
        let start = out.len();
        match self.router.route_message(from, &msg) {
            Route::Shard(s) => self.shards[s].handle_mb_message(from, msg, now, out),
            Route::Broadcast => {
                for sh in &mut self.shards {
                    sh.handle_mb_message(from, msg.clone(), now, out);
                }
            }
        }
        // The message may have closed the last blocker of a deferral
        // (final delete ack, terminal op ack).
        self.release_deferred(now, out);
        // ...or completed/failed the in-flight hop of a chain.
        self.advance_chains(now, out, start, false);
    }

    /// An MB became unreachable: every shard may hold ops touching it,
    /// so all of them must park/abort — correctness over hot-path cost
    /// (reachability changes are rare).
    pub fn mark_unreachable(&mut self, mb: MbId, now: SimTime, out: &mut Vec<Action>) {
        self.sync_config();
        let start = out.len();
        for sh in &mut self.shards {
            sh.mark_unreachable(mb, now, out);
        }
        // Aborted blockers count as closed; swept/released here.
        self.release_deferred(now, out);
        // An aborted hop op sends its chain into rollback.
        self.advance_chains(now, out, start, false);
    }

    /// An MB came back: broadcast, mirroring `mark_unreachable`.
    pub fn mark_reachable(&mut self, mb: MbId, now: SimTime, out: &mut Vec<Action>) {
        self.sync_config();
        let start = out.len();
        for sh in &mut self.shards {
            sh.mark_reachable(mb, now, out);
        }
        self.release_deferred(now, out);
        // The endpoint a parked reverse move was waiting for may be
        // back: re-attempt rollbacks now.
        self.advance_chains(now, out, start, true);
    }

    /// Is `mb` currently marked unreachable? (The set is broadcast, so
    /// any shard can answer.)
    pub fn is_unreachable(&self, mb: MbId) -> bool {
        self.shards[0].is_unreachable(mb)
    }

    /// Periodic maintenance, shard by shard in index order — the order
    /// is fixed so a seeded sim run replays byte-identically.
    pub fn tick(&mut self, now: SimTime, out: &mut Vec<Action>) {
        self.sync_config();
        let start = out.len();
        for sh in &mut self.shards {
            sh.tick(now, out);
        }
        // Quiescence and deadline aborts close ops: the sweep that
        // eventually releases any deferral, whatever else happens.
        self.release_deferred(now, out);
        // Deadline-aborted hops start rollbacks; parked reverse moves
        // get their paced re-attempt.
        self.advance_chains(now, out, start, true);
    }

    // ------------------------------------------------------------------
    // Introspection / metrics
    // ------------------------------------------------------------------

    /// Operations not yet quiesced plus actively re-delivered deletes,
    /// across all shards — plus live chain transactions, so embeddings
    /// keep the maintenance timer armed while a chain is between hops
    /// or pacing a rollback retry.
    pub fn open_ops(&self) -> usize {
        self.shards.iter().map(|s| s.open_ops()).sum::<usize>() + self.chains.len()
    }

    /// Chain transactions still running (any phase).
    pub fn open_chains(&self) -> usize {
        self.chains.len()
    }

    /// Current phase of chain `id`; `None` once terminal (its
    /// [`Completion::ChainComplete`] / [`Completion::Failed`] has been
    /// emitted) or for ids that are not chains.
    pub fn chain_status(&self, id: OpId) -> Option<ChainStatus> {
        self.chains.iter().find(|c| c.id == id).map(|c| c.status())
    }

    /// Forward hop ops issued so far by live chain `id`, in hop order
    /// (diagnostics, tests). Empty once the chain is terminal.
    pub fn chain_hop_ops(&self, id: OpId) -> Vec<OpId> {
        self.chains.iter().find(|c| c.id == id).map(|c| c.hop_ops.clone()).unwrap_or_default()
    }

    /// Southbound messages brokered, across all shards.
    pub fn messages_handled(&self) -> u64 {
        self.shards.iter().map(|s| s.messages_handled).sum()
    }

    /// Peak reprocess-event buffer depth observed on any one shard.
    pub fn events_buffered_peak(&self) -> usize {
        self.shards.iter().map(|s| s.events_buffered_peak).max().unwrap_or(0)
    }

    /// Events forwarded under an operation (experiments).
    pub fn events_forwarded(&self, op: OpId) -> u64 {
        self.shards[self.router.shard_of_op(op)].events_forwarded(op)
    }

    /// Total chunks transferred under an operation (experiments).
    pub fn chunks_moved(&self, op: OpId) -> usize {
        self.shards[self.router.shard_of_op(op)].chunks_moved(op)
    }

    /// Transfer-ledger snapshot for `op`: per-op fields from the owning
    /// shard; cache counters summed across shards; `in_flight_peak` is
    /// the largest any single shard saw (each shard's ledger is
    /// independently window-bounded, which is the invariant the
    /// conformance suite asserts).
    pub fn transfer_ledger_stats(&self, op: OpId) -> TransferLedgerStats {
        let mut merged = self.shards[self.router.shard_of_op(op)].transfer_ledger_stats(op);
        merged.in_flight_peak = 0;
        merged.cache_hits = 0;
        merged.cache_misses = 0;
        merged.bodies_sent = 0;
        merged.bytes_saved = 0;
        for sh in &self.shards {
            let s = sh.transfer_ledger_stats(op);
            merged.in_flight_peak = merged.in_flight_peak.max(s.in_flight_peak);
            merged.cache_hits += s.cache_hits;
            merged.cache_misses += s.cache_misses;
            merged.bodies_sent += s.bodies_sent;
            merged.bytes_saved += s.bytes_saved;
        }
        merged
    }

    /// One point-in-time health capture: per-shard load, deferred ops,
    /// open chains, and the aggregate transfer ledger. `violations` is
    /// supplied by the caller (the invariant [`openmb_obs::Monitor`]
    /// lives in the embedding, not in the core); queue depth / busy
    /// fields are zero here and filled in by embeddings that model
    /// per-shard service queues (the sim's `ControllerNode`).
    pub fn health_snapshot(&self, t_ns: u64, violations: u64) -> HealthSnapshot {
        let mut ledger = LedgerHealth::default();
        let mut shards = Vec::with_capacity(self.shards.len());
        for (i, sh) in self.shards.iter().enumerate() {
            let a = sh.aggregate_ledger_stats();
            ledger.puts_in_flight += a.puts_in_flight as u64;
            ledger.puts_queued += a.puts_queued as u64;
            ledger.ack_set_size += a.ack_set_size as u64;
            ledger.bodies_in_flight += a.bodies_in_flight as u64;
            ledger.in_flight_peak = ledger.in_flight_peak.max(a.in_flight_peak as u64);
            ledger.cache_hits += a.cache_hits;
            ledger.cache_misses += a.cache_misses;
            ledger.bodies_sent += a.bodies_sent;
            ledger.bytes_saved += a.bytes_saved;
            shards.push(ShardHealth {
                shard: i as u32,
                open_ops: sh.open_ops() as u64,
                deferred_ops: sh.deferred_ops() as u64,
                queue_depth: 0,
                queue_depth_peak: 0,
                busy: false,
            });
        }
        HealthSnapshot { t_ns, shards, open_chains: self.chains.len() as u64, ledger, violations }
    }

    /// Live transfers currently pinned in the router's conflict table
    /// (diagnostics; shrinks lazily on the next admission).
    pub fn active_transfers(&self) -> usize {
        self.router.active_transfers()
    }

    /// Transfers reserved under a cross-shard conflict and still
    /// awaiting release (diagnostics, tests).
    pub fn deferred_transfers(&self) -> usize {
        self.router.deferred_transfers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmb_simnet::SimTime;
    use openmb_types::IpPrefix;
    use std::net::Ipv4Addr;

    /// Two-sided subnet pattern — flows staying inside `10.b.0.0/16`,
    /// the disjoint-tenant flowspace shape the bench uses.
    fn subnet(b: u8) -> HeaderFieldList {
        let p = IpPrefix::new(Ipv4Addr::new(10, b, 0, 0), 16);
        HeaderFieldList { nw_src: p, nw_dst: p, ..HeaderFieldList::any() }
    }

    fn sharded(n: u32) -> (ControllerCore, MbId, MbId, MbId, MbId) {
        let mut core =
            ControllerCore::new(ControllerConfig { shards: n, ..ControllerConfig::default() });
        let a = core.register_mb();
        let b = core.register_mb();
        let c = core.register_mb();
        let d = core.register_mb();
        (core, a, b, c, d)
    }

    #[test]
    fn single_shard_alloc_matches_legacy_sequence() {
        let (mut core, a, b, _, _) = sharded(1);
        let mut out = Vec::new();
        let op1 = core.move_internal(a, b, subnet(0), SimTime(0), &mut out);
        assert_eq!(core.shard_of_op(op1), 0);
        // Shard 0 of 1 allocates 1, 2, 3, … — op 1 plus its sub-ops,
        // exactly the pre-sharding id stream.
        assert_eq!(op1, OpId(1));
    }

    #[test]
    fn disjoint_moves_get_disjoint_op_residues() {
        let mut core =
            ControllerCore::new(ControllerConfig { shards: 4, ..ControllerConfig::default() });
        let mbs: Vec<MbId> = (0..8).map(|_| core.register_mb()).collect();
        let mut out = Vec::new();
        // Four disjoint-subnet moves on four disjoint MB pairs: none
        // conflict, so placement is pure hash and must actually spread
        // over more than one shard (ledger disjointness is what the
        // multi-op bench's speedup rests on).
        let shards: std::collections::HashSet<usize> = (0..4usize)
            .map(|i| {
                let op = core.move_internal(
                    mbs[2 * i],
                    mbs[2 * i + 1],
                    subnet(i as u8),
                    SimTime(0),
                    &mut out,
                );
                assert_eq!((op.0 - 1) % 4, core.shard_of_op(op) as u64);
                core.shard_of_op(op)
            })
            .collect();
        assert!(shards.len() > 1, "disjoint moves must parallelize: {shards:?}");
    }

    #[test]
    fn overlapping_move_is_pinned_to_the_live_ops_shard() {
        let (mut core, a, b, c, _) = sharded(4);
        let mut out = Vec::new();
        let op1 = core.move_internal(a, b, subnet(0), SimTime(0), &mut out);
        // Same flowspace on a pair sharing MB `b`: must serialize on
        // op1's shard regardless of its own hash.
        let op2 = core.move_internal(b, c, subnet(0), SimTime(0), &mut out);
        assert_eq!(core.shard_of_op(op1), core.shard_of_op(op2));
        assert_eq!(core.active_transfers(), 2);
    }

    #[test]
    fn bridging_clone_defers_then_releases_when_its_blocker_closes() {
        let mut core =
            ControllerCore::new(ControllerConfig { shards: 4, ..ControllerConfig::default() });
        let mbs: Vec<MbId> = (0..8).map(|_| core.register_mb()).collect();
        // Two disjoint moves whose hash placements differ (such a pair
        // exists: the bench subnets spread over more than one shard).
        let place =
            |i: usize| ShardRouter::hash_placement(4, &subnet(i as u8), mbs[2 * i], mbs[2 * i + 1]);
        let (i, j) = (0..4)
            .flat_map(|a| (0..4).map(move |b| (a, b)))
            .find(|&(a, b)| a != b && place(a) != place(b))
            .expect("bench subnets spread over more than one shard");
        let mut out = Vec::new();
        let op_a =
            core.move_internal(mbs[2 * i], mbs[2 * i + 1], subnet(i as u8), SimTime(0), &mut out);
        out.clear();
        let op_b =
            core.move_internal(mbs[2 * j], mbs[2 * j + 1], subnet(j as u8), SimTime(0), &mut out);
        assert_ne!(core.shard_of_op(op_a), core.shard_of_op(op_b));
        let subs_b: Vec<OpId> = out
            .iter()
            .filter_map(|a| match a {
                Action::ToMb(_, Message::GetSupportPerflow { op, .. })
                | Action::ToMb(_, Message::GetReportPerflow { op, .. }) => Some(*op),
                _ => None,
            })
            .collect();
        assert_eq!(subs_b.len(), 2);
        out.clear();
        // A wildcard clone bridging one endpoint of each live move
        // conflicts on two shards at once: it must reserve without any
        // southbound traffic, on the earliest conflicting op's shard.
        let op_c = core.clone_support(mbs[2 * i + 1], mbs[2 * j], SimTime(0), &mut out);
        assert!(
            out.iter().all(|a| !matches!(a, Action::ToMb(..))),
            "a deferred transfer must emit no southbound traffic: {out:?}"
        );
        assert_eq!(core.deferred_transfers(), 1);
        assert_eq!(core.shard_of_op(op_c), core.shard_of_op(op_a));
        out.clear();
        // Close the blocking move (op_b, the one on the other shard):
        // empty get streams complete it...
        let src_b = mbs[2 * j];
        let t1 = SimTime(1_000_000);
        for sub in &subs_b {
            core.handle_mb_message(src_b, Message::GetAck { op: *sub, count: 0 }, t1, &mut out);
        }
        // ...but completed-not-quiesced still owes deletes: not closed.
        assert_eq!(core.deferred_transfers(), 1);
        out.clear();
        // Quiescence (500ms after last activity) emits the source-side
        // deletes; the op stays open until they are acked.
        core.tick(SimTime(601_000_000), &mut out);
        let dels: Vec<OpId> = out
            .iter()
            .filter_map(|a| match a {
                Action::ToMb(_, Message::DelSupportPerflow { op, .. })
                | Action::ToMb(_, Message::DelReportPerflow { op, .. }) => Some(*op),
                _ => None,
            })
            .collect();
        assert_eq!(dels.len(), 2);
        assert_eq!(core.deferred_transfers(), 1);
        out.clear();
        // Acking both deletes fully closes op_b; the release fires
        // inside the same handle_mb_message call and the clone finally
        // issues its shared get — with op_a still live on its own
        // shard, where FIFO ordering serializes the remaining conflict.
        core.handle_mb_message(
            src_b,
            Message::OpAck { op: dels[0] },
            SimTime(602_000_000),
            &mut out,
        );
        core.handle_mb_message(
            src_b,
            Message::OpAck { op: dels[1] },
            SimTime(603_000_000),
            &mut out,
        );
        assert_eq!(core.deferred_transfers(), 0);
        let gets: Vec<&Action> = out
            .iter()
            .filter(|a| matches!(a, Action::ToMb(_, Message::GetSupportShared { .. })))
            .collect();
        assert_eq!(gets.len(), 1, "released clone must issue its shared get: {out:?}");
    }

    /// The `(sub, src)` pairs of a move's two get requests in `out`.
    fn move_gets(out: &[Action]) -> Vec<(OpId, MbId)> {
        out.iter()
            .filter_map(|a| match a {
                Action::ToMb(mb, Message::GetSupportPerflow { op, .. })
                | Action::ToMb(mb, Message::GetReportPerflow { op, .. }) => Some((*op, *mb)),
                _ => None,
            })
            .collect()
    }

    /// Complete a move whose two gets are in `out[at..]` by answering
    /// both with empty streams; returns the remainder of the actions.
    fn ack_gets(core: &mut ControllerCore, gets: &[(OpId, MbId)], t: SimTime) -> Vec<Action> {
        let mut out = Vec::new();
        for (sub, mb) in gets {
            core.handle_mb_message(*mb, Message::GetAck { op: *sub, count: 0 }, t, &mut out);
        }
        out
    }

    #[test]
    fn chain_runs_hops_in_order_and_commits_once() {
        use crate::chain::{ChainHop, ChainSpec, ChainStatus};
        let (mut core, a, b, c, d) = sharded(4);
        let mut out = Vec::new();
        let chain = core.chain_move(
            ChainSpec::new(
                subnet(0),
                vec![ChainHop { src: a, dst: b }, ChainHop { src: c, dst: d }],
            ),
            SimTime(0),
            &mut out,
        );
        assert!(chain.0 >= crate::chain::CHAIN_OP_BASE);
        assert_eq!(core.chain_status(chain), Some(ChainStatus::Forward(0)));
        // Only hop 0's gets are on the wire; hop 1 must wait.
        let gets0 = move_gets(&out);
        assert_eq!(gets0.len(), 2);
        assert!(gets0.iter().all(|&(_, mb)| mb == a), "hop 0 streams from {a}: {out:?}");
        // Every hop entry occupies the conflict table under the chain id.
        assert_eq!(core.active_transfers(), 2);
        // Completing hop 0 issues hop 1 in the same southbound call.
        let out1 = ack_gets(&mut core, &gets0, SimTime(1_000_000));
        assert_eq!(core.chain_status(chain), Some(ChainStatus::Forward(1)));
        let gets1 = move_gets(&out1);
        assert_eq!(gets1.len(), 2);
        assert!(gets1.iter().all(|&(_, mb)| mb == c));
        assert!(
            !out1.iter().any(|x| matches!(x, Action::Notify(Completion::ChainComplete { .. }))),
            "chain must not commit before its last hop"
        );
        // Both hop ops run on the chain's one shard.
        let hops = core.chain_hop_ops(chain);
        assert_eq!(hops.len(), 2);
        assert_eq!(core.shard_of_op(hops[0]), core.shard_of_op(hops[1]));
        // Completing hop 1 commits the chain.
        let out2 = ack_gets(&mut core, &gets1, SimTime(2_000_000));
        assert!(
            out2.iter().any(|x| matches!(
                x,
                Action::Notify(Completion::ChainComplete { op, hops: 2, .. }) if *op == chain
            )),
            "commit expected: {out2:?}"
        );
        assert_eq!(core.chain_status(chain), None);
        assert_eq!(core.open_chains(), 0);
    }

    #[test]
    fn chain_hop_failure_compensates_completed_hops_in_reverse() {
        use crate::chain::{ChainHop, ChainSpec, ChainStatus};
        let (mut core, a, b, c, d) = sharded(4);
        let mut out = Vec::new();
        let chain = core.chain_move(
            ChainSpec::new(
                subnet(0),
                vec![ChainHop { src: a, dst: b }, ChainHop { src: c, dst: d }],
            ),
            SimTime(0),
            &mut out,
        );
        let gets0 = move_gets(&out);
        let out1 = ack_gets(&mut core, &gets0, SimTime(1_000_000));
        assert_eq!(core.chain_status(chain), Some(ChainStatus::Forward(1)));
        // Hop 1's destination dies: the hop aborts and the chain starts
        // compensating hop 0 — but FIRST it force-quiesces hop 0's
        // forward op (source-side deletes at a), because a delete
        // re-sent after the reverse move's puts would destroy the very
        // state the rollback restores.
        let _ = out1;
        let mut out2 = Vec::new();
        core.mark_unreachable(d, SimTime(2_000_000), &mut out2);
        assert_eq!(core.chain_status(chain), Some(ChainStatus::Rollback(0)));
        assert!(move_gets(&out2).is_empty(), "no reverse move before hop 0 closes: {out2:?}");
        let dels: Vec<(OpId, MbId)> = out2
            .iter()
            .filter_map(|x| match x {
                Action::ToMb(mb, Message::DelSupportPerflow { op, .. })
                | Action::ToMb(mb, Message::DelReportPerflow { op, .. }) => Some((*op, *mb)),
                _ => None,
            })
            .collect();
        assert_eq!(dels.len(), 2, "hop 0 force-quiesce deletes at its source: {out2:?}");
        assert!(dels.iter().all(|&(_, mb)| mb == a));
        // Acking the deletes closes hop 0's forward op; the reverse
        // move (state back from b to a) issues in the same call.
        let mut out3 = Vec::new();
        for (sub, mb) in &dels {
            core.handle_mb_message(*mb, Message::OpAck { op: *sub }, SimTime(2_500_000), &mut out3);
        }
        let rev = move_gets(&out3);
        assert_eq!(rev.len(), 2);
        assert!(rev.iter().all(|&(_, mb)| mb == b), "reverse move streams from {b}: {out3:?}");
        // Completing the reverse move settles the chain as Failed with
        // the hop's original error.
        let out3 = ack_gets(&mut core, &rev, SimTime(3_000_000));
        let failed = out3.iter().find_map(|x| match x {
            Action::Notify(Completion::Failed { op, error, .. }) if *op == chain => Some(error),
            _ => None,
        });
        assert!(
            matches!(failed, Some(Error::MbUnreachable(mb)) if *mb == d),
            "chain Failed with the aborting hop's error expected: {out3:?}"
        );
        assert_eq!(core.chain_status(chain), None);
    }

    #[test]
    fn chain_with_dead_first_hop_aborts_without_compensation() {
        use crate::chain::{ChainHop, ChainSpec};
        let (mut core, a, b, c, d) = sharded(4);
        let mut out = Vec::new();
        core.mark_unreachable(a, SimTime(0), &mut out);
        out.clear();
        let chain = core.chain_move(
            ChainSpec::new(
                subnet(0),
                vec![ChainHop { src: a, dst: b }, ChainHop { src: c, dst: d }],
            ),
            SimTime(0),
            &mut out,
        );
        // Hop 0 fails fast; nothing completed, so the chain settles in
        // the same call with no reverse traffic.
        assert!(out.iter().any(|x| matches!(
            x,
            Action::Notify(Completion::Failed { op, .. }) if *op == chain
        )));
        assert_eq!(core.chain_status(chain), None);
        assert!(move_gets(&out).is_empty());
    }

    #[test]
    fn chain_rejects_overlapping_hop_pairs() {
        use crate::chain::{ChainHop, ChainSpec};
        let (mut core, a, b, c, _) = sharded(2);
        let mut out = Vec::new();
        let chain = core.chain_move(
            ChainSpec::new(
                subnet(0),
                vec![ChainHop { src: a, dst: b }, ChainHop { src: b, dst: c }],
            ),
            SimTime(0),
            &mut out,
        );
        assert!(out.iter().any(|x| matches!(
            x,
            Action::Notify(Completion::Failed { op, .. }) if *op == chain
        )));
        assert_eq!(core.active_transfers(), 0, "a rejected chain must pin nothing");
    }

    #[test]
    fn transfers_overlapping_a_chain_serialize_behind_the_whole_chain() {
        use crate::chain::{ChainHop, ChainSpec};
        let (mut core, a, b, c, d) = sharded(4);
        let mut out = Vec::new();
        let chain = core.chain_move(
            ChainSpec::new(
                subnet(0),
                vec![ChainHop { src: a, dst: b }, ChainHop { src: c, dst: d }],
            ),
            SimTime(0),
            &mut out,
        );
        // A single-pair move overlapping the LAST hop's MB pair pins to
        // the chain's shard even while the chain is still on hop 0.
        let mut out2 = Vec::new();
        let op = core.move_internal(d, a, subnet(0), SimTime(0), &mut out2);
        let hops = core.chain_hop_ops(chain);
        assert_eq!(core.shard_of_op(op), core.shard_of_op(hops[0]));
    }

    #[test]
    fn deferred_transfer_is_released_when_its_blocker_aborts_on_deadline() {
        let mut core =
            ControllerCore::new(ControllerConfig { shards: 4, ..ControllerConfig::default() });
        let mbs: Vec<MbId> = (0..8).map(|_| core.register_mb()).collect();
        let place =
            |i: usize| ShardRouter::hash_placement(4, &subnet(i as u8), mbs[2 * i], mbs[2 * i + 1]);
        let (i, j) = (0..4)
            .flat_map(|a| (0..4).map(move |b| (a, b)))
            .find(|&(a, b)| a != b && place(a) != place(b))
            .expect("bench subnets spread over more than one shard");
        let mut out = Vec::new();
        let op_a =
            core.move_internal(mbs[2 * i], mbs[2 * i + 1], subnet(i as u8), SimTime(0), &mut out);
        let op_b =
            core.move_internal(mbs[2 * j], mbs[2 * j + 1], subnet(j as u8), SimTime(0), &mut out);
        assert_ne!(core.shard_of_op(op_a), core.shard_of_op(op_b));
        out.clear();
        // Bridging clone admitted 5s in: defers behind the cross-shard
        // blocker, with its own deadline running from t=5s.
        let t5 = SimTime(5_000_000_000);
        let op_c = core.clone_support(mbs[2 * i + 1], mbs[2 * j], t5, &mut out);
        assert_eq!(core.deferred_transfers(), 1);
        assert!(core.shard(core.shard_of_op(op_c)).op_deferred(op_c));
        out.clear();
        // At t=11s both moves blow their 10s deadline and abort. The
        // aborted blocker counts as closed, so the SAME tick must
        // release the clone — which, at 6s of age, is still inside its
        // own deadline and finally issues its shared get.
        core.tick(SimTime(11_000_000_000), &mut out);
        let aborted: Vec<OpId> = out
            .iter()
            .filter_map(|a| match a {
                Action::Notify(Completion::Failed { op, .. }) => Some(*op),
                _ => None,
            })
            .collect();
        assert!(aborted.contains(&op_a) && aborted.contains(&op_b), "both moves abort: {out:?}");
        assert!(!aborted.contains(&op_c), "the released clone must not abort: {out:?}");
        assert_eq!(core.deferred_transfers(), 0);
        assert!(
            out.iter().any(
                |a| matches!(a, Action::ToMb(_, Message::GetSupportShared { op }) if *op != op_a)
            ),
            "released clone issues its shared get in the deadline tick: {out:?}"
        );
        assert!(!core.shard(core.shard_of_op(op_c)).op_deferred(op_c));
    }

    #[test]
    fn config_mutations_reach_shards_on_next_call() {
        let (mut core, a, b, _, _) = sharded(2);
        core.config.transfer_window = 7;
        let mut out = Vec::new();
        core.move_internal(a, b, subnet(0), SimTime(0), &mut out);
        for s in 0..core.num_shards() {
            assert_eq!(core.shard(s).config.transfer_window, 7);
        }
    }
}

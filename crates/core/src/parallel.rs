//! Thread-parallel embedding of the sharded controller.
//!
//! [`crate::controller::ControllerCore`] is single-threaded by design —
//! the simulator needs deterministic replay. [`ShardedController`] puts
//! the *same* shards behind per-shard locks so real OS threads (the TCP
//! pump, blocking northbound callers, benchmark drivers) drive disjoint
//! shards concurrently:
//!
//! * each [`ControllerShard`] sits in its own `Mutex` — a southbound
//!   message only locks the shard that owns its op (O(1) residue
//!   arithmetic picks it);
//! * the [`ShardRouter`] has its own lock, taken briefly on the
//!   admission path (new transfers) and for the route lookup; it is
//!   never held while a shard lock is held *except* during admission,
//!   and the order is always router → shard, so there is no deadlock
//!   cycle;
//! * the recorder handle is kept at the facade so transport-level
//!   events record without touching any shard.
//!
//! Every method is `&self` and returns the [`Action`]s to perform, so
//! callers execute sends/completions outside all locks.

use parking_lot::Mutex;

use openmb_obs::{NodeTag, Recorder, SpanEvent};
use openmb_simnet::SimTime;
use openmb_types::wire::Message;
use openmb_types::{ConfigValue, HeaderFieldList, HierarchicalKey, MbId, OpId};

use crate::router::{Route, ShardRouter};
use crate::shard::{Action, ControllerConfig, ControllerShard};

/// The sharded controller behind per-shard locks: safe to drive from
/// many threads at once, with disjoint shards never contending.
pub struct ShardedController {
    shards: Vec<Mutex<ControllerShard>>,
    router: Mutex<ShardRouter>,
    rec: Mutex<(Recorder, NodeTag)>,
}

impl ShardedController {
    /// A controller with the given tunables; `config.shards` (clamped
    /// to at least 1) fixes the shard count for the controller's life.
    pub fn new(config: ControllerConfig) -> Self {
        let n = config.shards.max(1) as usize;
        let shards = (0..n)
            .map(|s| Mutex::new(ControllerShard::with_op_space(config, s as u64 + 1, n as u64)))
            .collect();
        ShardedController {
            shards,
            router: Mutex::new(ShardRouter::new(n)),
            rec: Mutex::new((Recorder::disabled(), NodeTag::NONE)),
        }
    }

    /// Number of shards this controller runs.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Register a middlebox; every shard learns of it (registration is
    /// control-plane metadata, not per-shard state).
    pub fn register_mb(&self) -> MbId {
        let mut id = None;
        for sh in &self.shards {
            let got = sh.lock().register_mb();
            debug_assert!(id.is_none_or(|i| i == got));
            id = Some(got);
        }
        id.expect("at least one shard")
    }

    /// Install a flight recorder: registered once as "controller", the
    /// tag shared by every shard so the timeline shows one column.
    pub fn set_recorder(&self, rec: Recorder) {
        let tag = rec.register("controller");
        *self.rec.lock() = (rec.clone(), tag);
        for sh in &self.shards {
            sh.lock().set_recorder_with_tag(rec.clone(), tag);
        }
    }

    /// The installed flight recorder handle (disabled by default).
    pub fn recorder(&self) -> Recorder {
        self.rec.lock().0.clone()
    }

    /// Record a facade-level event (transport resets, reattaches)
    /// without taking any shard lock.
    pub fn record(&self, t_ns: u64, op: Option<u64>, sub: Option<u64>, ev: SpanEvent) {
        let (rec, tag) = &*self.rec.lock();
        rec.record(t_ns, *tag, op, sub, ev);
    }

    // ------------------------------------------------------------------
    // Northbound
    // ------------------------------------------------------------------

    /// `readConfig`.
    pub fn read_config(
        &self,
        src: MbId,
        key: HierarchicalKey,
        now: SimTime,
    ) -> (OpId, Vec<Action>) {
        self.simple(src, |sh, out| sh.read_config(src, key, now, out))
    }

    /// `writeConfig`.
    pub fn write_config(
        &self,
        dst: MbId,
        key: HierarchicalKey,
        values: Vec<ConfigValue>,
        now: SimTime,
    ) -> (OpId, Vec<Action>) {
        self.simple(dst, |sh, out| sh.write_config(dst, key, values, now, out))
    }

    /// `stats`.
    pub fn stats(&self, src: MbId, key: HeaderFieldList, now: SimTime) -> (OpId, Vec<Action>) {
        self.simple(src, |sh, out| sh.stats(src, key, now, out))
    }

    /// `moveInternal` — admitted through the conflict detector.
    pub fn move_internal(
        &self,
        src: MbId,
        dst: MbId,
        key: HeaderFieldList,
        now: SimTime,
    ) -> (OpId, Vec<Action>) {
        self.admit(key, src, dst, now, |sh, out| sh.move_internal(src, dst, key, now, out))
    }

    /// `cloneSupport` — wildcard conflict flowspace (it transfers all
    /// support state).
    pub fn clone_support(&self, src: MbId, dst: MbId, now: SimTime) -> (OpId, Vec<Action>) {
        self.admit(HeaderFieldList::any(), src, dst, now, |sh, out| {
            sh.clone_support(src, dst, now, out)
        })
    }

    /// `mergeInternal` — wildcard flowspace, like clone.
    pub fn merge_internal(&self, src: MbId, dst: MbId, now: SimTime) -> (OpId, Vec<Action>) {
        self.admit(HeaderFieldList::any(), src, dst, now, |sh, out| {
            sh.merge_internal(src, dst, now, out)
        })
    }

    /// `endOp`.
    pub fn end_op(&self, op: OpId) -> Vec<Action> {
        let s = self.router.lock().shard_of_op(op);
        let mut out = Vec::new();
        self.shards[s].lock().end_op(op, &mut out);
        out
    }

    /// Simple (flowspace-free) ops route by MB hash; no conflict entry.
    fn simple(
        &self,
        mb: MbId,
        issue: impl FnOnce(&mut ControllerShard, &mut Vec<Action>) -> OpId,
    ) -> (OpId, Vec<Action>) {
        let s = self.router.lock().route_simple(mb);
        let mut out = Vec::new();
        let op = issue(&mut self.shards[s].lock(), &mut out);
        (op, out)
    }

    /// Transfer admission: router lock held across shard choice +
    /// registration so two racing admissions with overlapping
    /// flowspaces cannot both hash-place (the second must observe the
    /// first's conflict entry).
    fn admit(
        &self,
        pattern: HeaderFieldList,
        src: MbId,
        dst: MbId,
        now: SimTime,
        issue: impl FnOnce(&mut ControllerShard, &mut Vec<Action>) -> OpId,
    ) -> (OpId, Vec<Action>) {
        let mut router = self.router.lock();
        router.prune(|shard, op| self.shards[shard].lock().op_closed(op));
        let s = router.choose_transfer_shard(&pattern, src, dst);
        let pinned = s != router.hash_shard(&pattern, src, dst);
        let mut out = Vec::new();
        let op = {
            let mut sh = self.shards[s].lock();
            let op = issue(&mut sh, &mut out);
            sh.recorder().record(
                now.0,
                sh.recorder_tag(),
                Some(op.0),
                None,
                SpanEvent::OpRouted { shard: s as u32, pinned },
            );
            op
        };
        router.register_transfer(op, pattern, src, dst, s);
        (op, out)
    }

    // ------------------------------------------------------------------
    // Southbound + lifecycle
    // ------------------------------------------------------------------

    /// Process one southbound message, locking only the owning shard.
    /// The router lock is taken briefly for the route lookup and
    /// released before the shard lock (no nesting on this path).
    pub fn handle_mb_message(&self, from: MbId, msg: Message, now: SimTime) -> Vec<Action> {
        let mut out = Vec::new();
        self.deliver(from, msg, now, &mut out);
        out
    }

    fn deliver(&self, from: MbId, msg: Message, now: SimTime, out: &mut Vec<Action>) {
        if matches!(msg, Message::Batch { .. }) {
            msg.for_each_unbatched(|m| self.deliver(from, m, now, out));
            return;
        }
        let route = self.router.lock().route_message(from, &msg);
        match route {
            Route::Shard(s) => self.shards[s].lock().handle_mb_message(from, msg, now, out),
            Route::Broadcast => {
                for sh in &self.shards {
                    sh.lock().handle_mb_message(from, msg.clone(), now, out);
                }
            }
        }
    }

    /// An MB became unreachable: broadcast (any shard may hold ops
    /// touching it).
    pub fn mark_unreachable(&self, mb: MbId, now: SimTime) -> Vec<Action> {
        let mut out = Vec::new();
        for sh in &self.shards {
            sh.lock().mark_unreachable(mb, now, &mut out);
        }
        out
    }

    /// An MB came back: broadcast, mirroring `mark_unreachable`.
    pub fn mark_reachable(&self, mb: MbId, now: SimTime) -> Vec<Action> {
        let mut out = Vec::new();
        for sh in &self.shards {
            sh.lock().mark_reachable(mb, now, &mut out);
        }
        out
    }

    /// Periodic maintenance across every shard.
    pub fn tick(&self, now: SimTime) -> Vec<Action> {
        let mut out = Vec::new();
        for sh in &self.shards {
            sh.lock().tick(now, &mut out);
        }
        out
    }

    /// Operations not yet quiesced plus actively re-delivered deletes,
    /// across all shards.
    pub fn open_ops(&self) -> usize {
        self.shards.iter().map(|s| s.lock().open_ops()).sum()
    }

    /// Southbound messages brokered, across all shards.
    pub fn messages_handled(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().messages_handled).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmb_types::IpPrefix;
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    fn subnet(b: u8) -> HeaderFieldList {
        let p = IpPrefix::new(Ipv4Addr::new(10, b, 0, 0), 16);
        HeaderFieldList { nw_src: p, nw_dst: p, ..HeaderFieldList::any() }
    }

    #[test]
    fn concurrent_admissions_with_same_flowspace_share_a_shard() {
        let ctrl = Arc::new(ShardedController::new(ControllerConfig {
            shards: 4,
            ..ControllerConfig::default()
        }));
        let a = ctrl.register_mb();
        let b = ctrl.register_mb();
        let c = ctrl.register_mb();
        let d = ctrl.register_mb();
        let mut handles = Vec::new();
        // Every pair contains MB `a`, so whatever order the threads win
        // the race, each later admission conflicts with the first.
        for (s, t) in [(a, b), (a, c), (a, d), (b, a)] {
            let ctrl = Arc::clone(&ctrl);
            handles.push(std::thread::spawn(move || {
                ctrl.move_internal(s, t, subnet(0), SimTime(0)).0
            }));
        }
        let ops: Vec<OpId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All four flowspaces overlap, so every op must carry the same
        // residue (same shard), whatever order the threads won the race.
        let residue = (ops[0].0 - 1) % 4;
        for op in &ops {
            assert_eq!((op.0 - 1) % 4, residue, "conflicting ops split across shards");
        }
    }

    #[test]
    fn disjoint_threads_land_on_disjoint_shards() {
        let ctrl =
            ShardedController::new(ControllerConfig { shards: 4, ..ControllerConfig::default() });
        let a = ctrl.register_mb();
        let b = ctrl.register_mb();
        // Four disjoint subnets must spread over more than one shard
        // (exact placement is the hash's business, spread is the
        // contract — same as the router's own placement test).
        let residues: std::collections::HashSet<u64> = (0..4u8)
            .map(|i| (ctrl.move_internal(a, b, subnet(i), SimTime(0)).0 .0 - 1) % 4)
            .collect();
        assert!(residues.len() > 1, "disjoint moves all hashed to one shard");
    }
}

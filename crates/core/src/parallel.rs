//! Thread-parallel embedding of the sharded controller.
//!
//! [`crate::controller::ControllerCore`] is single-threaded by design —
//! the simulator needs deterministic replay. [`ShardedController`] puts
//! the *same* shards behind per-shard locks so real OS threads (the TCP
//! pump, blocking northbound callers, benchmark drivers) drive disjoint
//! shards concurrently:
//!
//! * each [`ControllerShard`] sits in its own `Mutex` — a southbound
//!   message only locks the shard that owns its op (O(1) residue
//!   arithmetic picks it, no router lock at all: op-carrying messages
//!   route through the static [`ShardRouter::route_by_op`]);
//! * the [`ShardRouter`] has its own lock, taken briefly on the
//!   admission path (new transfers) and for the rare op-less route
//!   lookup; it is never held while a shard lock is held *except*
//!   during admission, and the order is always router → shard, so
//!   there is no deadlock cycle. Inside the router lock, shard state
//!   is only ever consulted via `try_lock` (conflict-table pruning,
//!   deferral sweeps) — conservative on contention, never blocking;
//! * the recorder handle is kept at the facade so transport-level
//!   events (and admission routing spans) record without holding any
//!   shard or router lock.
//!
//! Every method is `&self` and returns the [`Action`]s to perform, so
//! callers execute sends/completions outside all locks.

use parking_lot::Mutex;

use openmb_obs::{NodeTag, Recorder, SpanEvent};
use openmb_simnet::SimTime;
use openmb_types::wire::Message;
use openmb_types::{ConfigValue, HeaderFieldList, HierarchicalKey, MbId, OpId};

use crate::router::{Admission, Route, ShardRouter};
use crate::shard::{Action, ControllerConfig, ControllerShard, TransferKind};

/// The sharded controller behind per-shard locks: safe to drive from
/// many threads at once, with disjoint shards never contending.
pub struct ShardedController {
    shards: Vec<Mutex<ControllerShard>>,
    router: Mutex<ShardRouter>,
    rec: Mutex<(Recorder, NodeTag)>,
}

impl ShardedController {
    /// A controller with the given tunables; `config.shards` (clamped
    /// to at least 1) fixes the shard count for the controller's life.
    pub fn new(config: ControllerConfig) -> Self {
        let n = config.shards.max(1) as usize;
        let shards = (0..n)
            .map(|s| Mutex::new(ControllerShard::with_op_space(config, s as u64 + 1, n as u64)))
            .collect();
        ShardedController {
            shards,
            router: Mutex::new(ShardRouter::new(n)),
            rec: Mutex::new((Recorder::disabled(), NodeTag::NONE)),
        }
    }

    /// Number of shards this controller runs.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Register a middlebox; every shard learns of it (registration is
    /// control-plane metadata, not per-shard state).
    pub fn register_mb(&self) -> MbId {
        let mut id = None;
        for sh in &self.shards {
            let got = sh.lock().register_mb();
            debug_assert!(id.is_none_or(|i| i == got));
            id = Some(got);
        }
        id.expect("at least one shard")
    }

    /// Install a flight recorder: registered once as "controller", the
    /// tag shared by every shard so the timeline shows one column.
    pub fn set_recorder(&self, rec: Recorder) {
        let tag = rec.register("controller");
        *self.rec.lock() = (rec.clone(), tag);
        for sh in &self.shards {
            sh.lock().set_recorder_with_tag(rec.clone(), tag);
        }
    }

    /// The installed flight recorder handle (disabled by default).
    pub fn recorder(&self) -> Recorder {
        self.rec.lock().0.clone()
    }

    /// Record a facade-level event (transport resets, reattaches)
    /// without taking any shard lock.
    pub fn record(&self, t_ns: u64, op: Option<u64>, sub: Option<u64>, ev: SpanEvent) {
        let (rec, tag) = &*self.rec.lock();
        rec.record(t_ns, *tag, op, sub, ev);
    }

    // ------------------------------------------------------------------
    // Northbound
    // ------------------------------------------------------------------

    /// `readConfig`.
    pub fn read_config(
        &self,
        src: MbId,
        key: HierarchicalKey,
        now: SimTime,
    ) -> (OpId, Vec<Action>) {
        self.simple(src, |sh, out| sh.read_config(src, key, now, out))
    }

    /// `writeConfig`.
    pub fn write_config(
        &self,
        dst: MbId,
        key: HierarchicalKey,
        values: Vec<ConfigValue>,
        now: SimTime,
    ) -> (OpId, Vec<Action>) {
        self.simple(dst, |sh, out| sh.write_config(dst, key, values, now, out))
    }

    /// `stats`.
    pub fn stats(&self, src: MbId, key: HeaderFieldList, now: SimTime) -> (OpId, Vec<Action>) {
        self.simple(src, |sh, out| sh.stats(src, key, now, out))
    }

    /// `moveInternal` — admitted through the conflict detector.
    pub fn move_internal(
        &self,
        src: MbId,
        dst: MbId,
        key: HeaderFieldList,
        now: SimTime,
    ) -> (OpId, Vec<Action>) {
        self.admit(TransferKind::Move, key, src, dst, now)
    }

    /// `cloneSupport` — wildcard conflict flowspace (it transfers all
    /// support state).
    pub fn clone_support(&self, src: MbId, dst: MbId, now: SimTime) -> (OpId, Vec<Action>) {
        self.admit(TransferKind::Clone, HeaderFieldList::any(), src, dst, now)
    }

    /// `mergeInternal` — wildcard flowspace, like clone.
    pub fn merge_internal(&self, src: MbId, dst: MbId, now: SimTime) -> (OpId, Vec<Action>) {
        self.admit(TransferKind::Merge, HeaderFieldList::any(), src, dst, now)
    }

    /// `endOp` — op ownership is pure residue arithmetic, no router
    /// lock.
    pub fn end_op(&self, op: OpId, now: SimTime) -> Vec<Action> {
        let s = ShardRouter::owner_of_op(self.shards.len(), op);
        let mut out = Vec::new();
        self.shards[s].lock().end_op(op, now, &mut out);
        out
    }

    /// Simple (flowspace-free) ops route by MB hash; no conflict entry
    /// and — placement being pure arithmetic — no router lock.
    fn simple(
        &self,
        mb: MbId,
        issue: impl FnOnce(&mut ControllerShard, &mut Vec<Action>) -> OpId,
    ) -> (OpId, Vec<Action>) {
        let s = ShardRouter::place_simple(self.shards.len(), mb);
        let mut out = Vec::new();
        let op = issue(&mut self.shards[s].lock(), &mut out);
        (op, out)
    }

    /// Transfer admission: router lock held across verdict + issue +
    /// registration so two racing admissions with overlapping
    /// flowspaces cannot both hash-place (the second must observe the
    /// first's conflict entry). The critical section is kept short —
    /// pruning consults shards via `try_lock` only (a contended
    /// shard's entries are simply retained until a later admission),
    /// and the routing span records after every lock is dropped.
    fn admit(
        &self,
        kind: TransferKind,
        pattern: HeaderFieldList,
        src: MbId,
        dst: MbId,
        now: SimTime,
    ) -> (OpId, Vec<Action>) {
        let mut out = Vec::new();
        let (op, s, pinned) = {
            let mut router = self.router.lock();
            router.prune(|shard, op| {
                self.shards[shard].try_lock().is_some_and(|sh| sh.op_closed(op))
            });
            let (s, pinned, blockers) = match router.admit(&pattern, src, dst) {
                Admission::Run { shard, pinned } => (shard, pinned, Vec::new()),
                Admission::Defer { shard, blockers } => (shard, true, blockers),
            };
            let mut sh = self.shards[s].lock();
            let op = if blockers.is_empty() {
                match kind {
                    TransferKind::Move => sh.move_internal(src, dst, pattern, now, &mut out),
                    TransferKind::Clone => sh.clone_support(src, dst, now, &mut out),
                    TransferKind::Merge => sh.merge_internal(src, dst, now, &mut out),
                }
            } else {
                sh.reserve_transfer(kind, src, dst, pattern, now, &mut out)
            };
            router.register_transfer(op, pattern, src, dst, s);
            if !blockers.is_empty() && !sh.op_closed(op) {
                // op_closed means validation failed fast: terminal ops
                // never enter the release queue.
                router.push_deferred(op, s, blockers);
            }
            (op, s, pinned)
        };
        self.record(now.0, Some(op.0), None, SpanEvent::OpRouted { shard: s as u32, pinned });
        self.release_deferred(now, &mut out);
        (op, out)
    }

    /// Release reserved transfers whose cross-shard blockers have all
    /// closed. Blocker state is consulted via `try_lock` under the
    /// router lock (conservative: a contended shard re-checks on the
    /// next sweep); the releases themselves run after the router lock
    /// is dropped, locking only each released op's own shard.
    fn release_deferred(&self, now: SimTime, out: &mut Vec<Action>) {
        let ready = {
            let mut router = self.router.lock();
            if !router.has_deferred() {
                return;
            }
            router.drain_releasable(|shard, op| {
                self.shards[shard].try_lock().is_some_and(|sh| sh.op_closed(op))
            })
        };
        for (shard, op) in ready {
            self.shards[shard].lock().release_transfer(op, now, out);
        }
    }

    // ------------------------------------------------------------------
    // Southbound + lifecycle
    // ------------------------------------------------------------------

    /// Process one southbound message, locking only the owning shard.
    /// Op-carrying messages (the hot path) route by residue arithmetic
    /// without any router lock; only op-less introspection events take
    /// it, briefly, released before the shard lock (no nesting).
    pub fn handle_mb_message(&self, from: MbId, msg: Message, now: SimTime) -> Vec<Action> {
        let mut out = Vec::new();
        self.deliver(from, msg, now, &mut out);
        // The message may have closed the last blocker of a deferral.
        self.release_deferred(now, &mut out);
        out
    }

    fn deliver(&self, from: MbId, msg: Message, now: SimTime, out: &mut Vec<Action>) {
        if matches!(msg, Message::Batch { .. }) {
            msg.for_each_unbatched(|m| self.deliver(from, m, now, out));
            return;
        }
        let route = ShardRouter::route_by_op(self.shards.len(), &msg)
            .unwrap_or_else(|| self.router.lock().route_message(from, &msg));
        match route {
            Route::Shard(s) => self.shards[s].lock().handle_mb_message(from, msg, now, out),
            Route::Broadcast => {
                for sh in &self.shards {
                    sh.lock().handle_mb_message(from, msg.clone(), now, out);
                }
            }
        }
    }

    /// An MB became unreachable: broadcast (any shard may hold ops
    /// touching it).
    pub fn mark_unreachable(&self, mb: MbId, now: SimTime) -> Vec<Action> {
        let mut out = Vec::new();
        for sh in &self.shards {
            sh.lock().mark_unreachable(mb, now, &mut out);
        }
        // Aborted blockers count as closed; swept/released here.
        self.release_deferred(now, &mut out);
        out
    }

    /// An MB came back: broadcast, mirroring `mark_unreachable`.
    pub fn mark_reachable(&self, mb: MbId, now: SimTime) -> Vec<Action> {
        let mut out = Vec::new();
        for sh in &self.shards {
            sh.lock().mark_reachable(mb, now, &mut out);
        }
        self.release_deferred(now, &mut out);
        out
    }

    /// Periodic maintenance across every shard.
    pub fn tick(&self, now: SimTime) -> Vec<Action> {
        let mut out = Vec::new();
        for sh in &self.shards {
            sh.lock().tick(now, &mut out);
        }
        // Quiescence and deadline aborts close ops: the sweep that
        // eventually releases any deferral, whatever else happens.
        self.release_deferred(now, &mut out);
        out
    }

    /// Operations not yet quiesced plus actively re-delivered deletes,
    /// across all shards.
    pub fn open_ops(&self) -> usize {
        self.shards.iter().map(|s| s.lock().open_ops()).sum()
    }

    /// Southbound messages brokered, across all shards.
    pub fn messages_handled(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().messages_handled).sum()
    }

    /// Transfers reserved under a cross-shard conflict and still
    /// awaiting release (diagnostics, tests).
    pub fn deferred_transfers(&self) -> usize {
        self.router.lock().deferred_transfers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmb_types::IpPrefix;
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    fn subnet(b: u8) -> HeaderFieldList {
        let p = IpPrefix::new(Ipv4Addr::new(10, b, 0, 0), 16);
        HeaderFieldList { nw_src: p, nw_dst: p, ..HeaderFieldList::any() }
    }

    #[test]
    fn concurrent_admissions_with_same_flowspace_share_a_shard() {
        let ctrl = Arc::new(ShardedController::new(ControllerConfig {
            shards: 4,
            ..ControllerConfig::default()
        }));
        let a = ctrl.register_mb();
        let b = ctrl.register_mb();
        let c = ctrl.register_mb();
        let d = ctrl.register_mb();
        let mut handles = Vec::new();
        // Every pair contains MB `a`, so whatever order the threads win
        // the race, each later admission conflicts with the first.
        for (s, t) in [(a, b), (a, c), (a, d), (b, a)] {
            let ctrl = Arc::clone(&ctrl);
            handles.push(std::thread::spawn(move || {
                ctrl.move_internal(s, t, subnet(0), SimTime(0)).0
            }));
        }
        let ops: Vec<OpId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All four flowspaces overlap, so every op must carry the same
        // residue (same shard), whatever order the threads won the race.
        let residue = (ops[0].0 - 1) % 4;
        for op in &ops {
            assert_eq!((op.0 - 1) % 4, residue, "conflicting ops split across shards");
        }
    }

    #[test]
    fn disjoint_threads_land_on_disjoint_shards() {
        let ctrl =
            ShardedController::new(ControllerConfig { shards: 4, ..ControllerConfig::default() });
        let a = ctrl.register_mb();
        let b = ctrl.register_mb();
        // Four disjoint subnets must spread over more than one shard
        // (exact placement is the hash's business, spread is the
        // contract — same as the router's own placement test).
        let residues: std::collections::HashSet<u64> = (0..4u8)
            .map(|i| (ctrl.move_internal(a, b, subnet(i), SimTime(0)).0 .0 - 1) % 4)
            .collect();
        assert!(residues.len() > 1, "disjoint moves all hashed to one shard");
    }

    #[test]
    fn bridging_clone_defers_instead_of_running_concurrently() {
        let ctrl =
            ShardedController::new(ControllerConfig { shards: 4, ..ControllerConfig::default() });
        let mbs: Vec<MbId> = (0..8).map(|_| ctrl.register_mb()).collect();
        // Two disjoint moves (disjoint flowspaces, disjoint MB pairs)
        // whose hash placements differ — such a pair exists because the
        // four bench subnets spread over more than one shard.
        let place =
            |i: usize| ShardRouter::hash_placement(4, &subnet(i as u8), mbs[2 * i], mbs[2 * i + 1]);
        let (i, j) = (0..4)
            .flat_map(|a| (0..4).map(move |b| (a, b)))
            .find(|&(a, b)| a != b && place(a) != place(b))
            .expect("bench subnets spread over more than one shard");
        let (op_a, _) = ctrl.move_internal(mbs[2 * i], mbs[2 * i + 1], subnet(i as u8), SimTime(0));
        let (op_b, _) = ctrl.move_internal(mbs[2 * j], mbs[2 * j + 1], subnet(j as u8), SimTime(0));
        assert_ne!((op_a.0 - 1) % 4, (op_b.0 - 1) % 4, "moves must sit on different shards");
        // A wildcard clone bridging one endpoint of each move conflicts
        // with live transfers on two shards: no placement serializes
        // it, so it must reserve (no southbound traffic) and queue.
        let (op_c, out) = ctrl.clone_support(mbs[2 * i + 1], mbs[2 * j], SimTime(0));
        assert!(
            out.iter().all(|a| !matches!(a, Action::ToMb(..))),
            "a deferred transfer must emit no southbound traffic: {out:?}"
        );
        assert_eq!(ctrl.deferred_transfers(), 1);
        // Reserved on the earliest-admitted conflicting move's shard.
        assert_eq!((op_c.0 - 1) % 4, (op_a.0 - 1) % 4);
    }
}

//! One shard of the MB controller (§5): the broker between northbound
//! control operations and the southbound protocol.
//!
//! [`ControllerShard`] is a pure state machine: northbound calls and
//! southbound messages go in, [`Action`]s come out. It implements the
//! Figure 5 choreography for `moveInternal` — issue both per-flow gets
//! to the source, forward streamed chunks as puts to the destination,
//! track per-put ACKs, buffer reprocess events "until the DstMB has
//! ACK'd the put for the piece of per-flow state to which the event
//! applies", and, after a quiescence window with no events (the routing
//! change has taken effect), delete the moved state at the source — plus
//! the analogous sequences for `cloneSupport` and `mergeInternal`
//! (shared state; no delete).
//!
//! A shard owns *all* state for the operations routed to it — the op
//! table, sub-op map, transfer ledgers, ack sets, and the pending-delete
//! ledger — so shards share nothing and never need a lock between them.
//! The facade ([`crate::controller::ControllerCore`]) owns N shards plus
//! the [`crate::router::ShardRouter`] that keeps overlapping flowspaces
//! on one shard; a single-shard facade is byte-for-byte the pre-sharding
//! controller. Each shard allocates op ids from its own residue class
//! (`first + k·stride`), which both keeps ids globally unique and makes
//! southbound demux a mod operation rather than a table lookup.
//!
//! Keeping the core pure lets the same controller run embedded in the
//! discrete-event simulator (`nodes::ControllerNode`) and over real TCP
//! transports (`tcp`), exactly as the paper's Floodlight module serves
//! both their testbed and their dummy-MB scalability rig.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use openmb_obs::{NodeTag, ParkReason, Recorder, SpanEvent};
use openmb_simnet::{SimDuration, SimTime};
use openmb_types::wire::{self, Event, EventFilter, Message};
use openmb_types::{
    ConfigValue, Error, FlowKey, HeaderFieldList, HierarchicalKey, MbId, OpId, Packet, StateStats,
};

/// An effect the embedding must carry out.
///
/// `#[non_exhaustive]`: embeddings must keep a wildcard arm so new
/// action kinds are not breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send a protocol message to a middlebox.
    ToMb(MbId, Message),
    /// Deliver a completion/notification to the control application.
    Notify(Completion),
}

/// Northbound completions and notifications delivered to control
/// applications.
///
/// `#[non_exhaustive]`: applications must keep a wildcard arm so new
/// completion kinds are not breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion {
    /// `readConfig` finished.
    Config { op: OpId, pairs: Vec<(HierarchicalKey, Vec<ConfigValue>)> },
    /// `writeConfig`/`delConfig`/`enableEvents` acknowledged.
    Ack { op: OpId },
    /// `stats` finished.
    Stats { op: OpId, stats: StateStats },
    /// `moveInternal` finished: every put has been ACKed (events may
    /// continue to be forwarded afterwards).
    MoveComplete { op: OpId, chunks_moved: usize },
    /// `cloneSupport` finished.
    CloneComplete { op: OpId },
    /// `mergeInternal` finished.
    MergeComplete { op: OpId },
    /// A chain move ([`crate::controller::ControllerCore::chain_move`])
    /// committed: every hop's per-flow move completed. Until this fires
    /// the chain can still abort and roll every hop back, so
    /// applications must not repoint routing on the individual hops'
    /// [`Completion::MoveComplete`]s — those are sub-results of the
    /// chain transaction.
    ChainComplete {
        op: OpId,
        /// Number of hops the chain moved.
        hops: usize,
        /// Total chunks transferred across all hops.
        chunks_moved: usize,
    },
    /// An operation failed. Carries the typed [`Error`] so applications
    /// can branch on the failure kind (timeout, unreachable MB,
    /// granularity, ...) instead of parsing a message string, plus the
    /// number of buffered reprocess events the abort discarded — before
    /// this was reported, the app always saw a count of zero because the
    /// rollback path cleared the buffer first.
    Failed { op: OpId, error: Error, dropped_events: usize },
    /// An introspection event arrived from a middlebox the application
    /// subscribed to.
    MbEvent { mb: MbId, code: u32, key: FlowKey, values: Vec<(String, String)> },
}

impl Completion {
    /// The operation this completion concludes (`None` for MbEvent).
    pub fn op(&self) -> Option<OpId> {
        match self {
            Completion::Config { op, .. }
            | Completion::Ack { op }
            | Completion::Stats { op, .. }
            | Completion::MoveComplete { op, .. }
            | Completion::CloneComplete { op }
            | Completion::MergeComplete { op }
            | Completion::ChainComplete { op, .. }
            | Completion::Failed { op, .. } => Some(*op),
            Completion::MbEvent { .. } => None,
        }
    }
}

/// Which southbound exchange a sub-operation id belongs to. Put roles
/// carry the controller-assigned per-op chunk sequence number `seq`, so
/// a duplicated `PutAck` (fault injection, or a re-sent put racing its
/// original ack) is deduplicated by `(op, seq)` instead of double-
/// decrementing the outstanding-put count.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SubRole {
    GetSupport,
    GetReport,
    PutSupport {
        key: HeaderFieldList,
        seq: u64,
    },
    PutReport {
        key: HeaderFieldList,
        seq: u64,
    },
    GetSharedSupport,
    GetSharedReport,
    PutSharedSupport {
        seq: u64,
    },
    PutSharedReport {
        seq: u64,
    },
    DelSupport,
    DelReport,
    /// Shared-state rollback (`DeleteState`) after a clone/merge abort.
    DelShared,
    Simple,
}

/// A reprocess event parked until its chunk's put is ACKed.
#[derive(Debug, Clone)]
struct BufferedEvent {
    key: FlowKey,
    packet: Packet,
}

/// Retry bookkeeping for idempotent simple requests (config reads,
/// stats). The stored request keeps its original sub-op id, so a
/// duplicate reply after a retry lands on an already-completed op and
/// is ignored.
#[derive(Clone)]
struct RetryState {
    target: MbId,
    request: Message,
    next_at: SimTime,
    backoff: SimDuration,
    left: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    ReadConfig,
    WriteConfig,
    DelConfig,
    Stats,
    EnableEvents,
    Move,
    Clone,
    Merge,
}

/// The three transfer-class northbound operations, as a public handle
/// so embeddings can reserve a deferred transfer
/// ([`ControllerShard::reserve_transfer`]) without naming the private
/// [`OpKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    Move,
    Clone,
    Merge,
}

impl TransferKind {
    fn op_kind(self) -> OpKind {
        match self {
            TransferKind::Move => OpKind::Move,
            TransferKind::Clone => OpKind::Clone,
            TransferKind::Merge => OpKind::Merge,
        }
    }

    /// The northbound API name, as spans report it.
    fn api_name(self) -> &'static str {
        match self {
            TransferKind::Move => "moveInternal",
            TransferKind::Clone => "cloneSupport",
            TransferKind::Merge => "mergeInternal",
        }
    }
}

/// Per-operation progress.
#[derive(Clone)]
struct OpState {
    kind: OpKind,
    src: MbId,
    dst: MbId,
    /// For moves: the pattern being moved.
    pattern: HeaderFieldList,
    /// Outstanding get streams (2 for move: support+report; 1-2 for
    /// clone/merge).
    gets_outstanding: u32,
    /// Outstanding puts (sub-op ids).
    puts_outstanding: u32,
    /// Chunk keys whose puts have been ACKed.
    acked_keys: Vec<HeaderFieldList>,
    /// Chunk keys whose puts are in flight (issued or window-queued).
    /// A set, not a list: the ack path removes one exact key per
    /// `PutAck`, and a linear scan there is O(n²) over a transfer.
    pending_keys: HashSet<HeaderFieldList>,
    /// The get sub-operations issued to the source. The source MB tags
    /// its moved/cloned marks (and its reprocess events) with these ids,
    /// so closing the sync window means sending EndSync for each.
    get_subs: Vec<OpId>,
    /// Events waiting for their chunk's put ACK.
    buffered: Vec<BufferedEvent>,
    /// Total chunks transferred.
    chunks: usize,
    /// Completion already reported?
    completed: bool,
    /// Virtual time of the most recent event (or completion), for the
    /// quiescence timer.
    last_activity: SimTime,
    /// Quiescence already executed (del/EndSync sent)?
    quiesced: bool,
    /// Virtual time at which the op is aborted if still incomplete.
    deadline: SimTime,
    /// Retry schedule for idempotent simple requests.
    retry: Option<RetryState>,
    /// Statistics: events forwarded under this op.
    pub events_forwarded: u64,

    // ---- resumable-transfer bookkeeping ----
    /// Next per-op chunk sequence number (tags put sub-roles).
    next_chunk_seq: u64,
    /// Watermark-compacted ack set: every seq below `ack_watermark` has
    /// been acked, plus the sparse set of acked seqs at or above it.
    /// Together they are the (op, chunk_seq) dedup a duplicated ack
    /// must not get past — in O(log W) space-bounded form instead of a
    /// `HashSet<u64>` that grows by one entry per chunk forever.
    ack_watermark: u64,
    acked_above: BTreeSet<u64>,
    /// Get sub-ops that have fully completed (stream closed); dedups
    /// duplicated `GetAck`s and re-streamed `SharedChunk`s.
    done_gets: HashSet<OpId>,
    /// Chunk identities already streamed (is_report, key): a duplicated
    /// or re-streamed chunk is dropped instead of creating a second put.
    streamed: HashSet<(bool, HeaderFieldList)>,
    /// Distinct chunk keys received per get sub-op, compared against the
    /// `GetAck` count so a dropped chunk leaves the get open for resume.
    get_seen: HashMap<OpId, HashSet<HeaderFieldList>>,
    /// The chunk count each get's `GetAck` announced.
    get_expected: HashMap<OpId, u32>,
    /// The original get requests, re-sent verbatim (same sub ids) on
    /// resume; the source's moved-marks and our chunk dedup make the
    /// re-issue idempotent.
    get_reqs: Vec<(OpId, Message)>,
    /// The in-flight put ledger: puts issued but not yet acked, keyed
    /// by sequence number. A `BTreeMap` so the ack path removes in
    /// O(log W) and resume finds the window base (first key) in
    /// O(log W), instead of the old `Vec` retain/min-scan that made a
    /// long transfer O(n²). Bounded by `transfer_window` when set.
    unacked_puts: BTreeMap<u64, Message>,
    /// Puts created but deferred because the window is full, in seq
    /// order. `refill_window` promotes them into `unacked_puts` (and
    /// onto the wire) as acks open slots.
    queued_puts: VecDeque<(u64, Message)>,
    /// Shared-state put sub-ops issued to the destination, in order —
    /// the rollback list an abort sends in `DeleteState`.
    shared_puts: Vec<OpId>,
    /// Remaining resume attempts (config `max_transfer_resumes`).
    resumes_left: u32,
    /// Parked while an endpoint is unreachable, awaiting resume.
    suspended: bool,
    /// Reserved under a cross-shard conflict deferral: the op id and
    /// state exist (so the router's conflict entry pins later
    /// admissions) but no southbound traffic has been issued yet.
    /// Cleared by [`ControllerShard::release_transfer`].
    deferred: bool,

    // ---- content-addressed transfer bookkeeping ----
    /// Body (and its content hash) of every in-flight `ChunkRef`, by
    /// seq — the source of the `ChunkBody` answering a `ChunkNeed`.
    /// Entries leave on ack or abort, so this holds O(window) chunks,
    /// not the whole transfer.
    ref_bodies: HashMap<u64, (openmb_types::StateChunk, [u8; 32])>,
    /// Seqs whose destination reported a cache miss (`ChunkNeed`): the
    /// bodies currently streaming alongside the reference window. The
    /// ledger counts these separately from the refs in `unacked_puts` —
    /// a body does not occupy a second window slot; its ref's slot is
    /// still open until the `PutAck` lands.
    needed: HashSet<u64>,
}

/// Tunable controller parameters.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// How long after the last reprocess event the controller assumes
    /// the routing change has taken effect (paper: "a fixed amount of
    /// time (e.g., 5 seconds)").
    pub quiesce_after: SimDuration,
    /// Compress state transfers between controller and MBs (§8.3).
    /// Affects the modeled wire size of Chunk/Put messages via the
    /// embedding; the core only records the setting.
    pub compress_transfers: bool,
    /// Buffer reprocess events until the matching put is ACKed (Fig 5).
    /// Disabling this is an ABLATION ONLY: events forwarded before their
    /// chunk's put land first and are overwritten by the put — the exact
    /// §4.2.1 atomicity violation the design exists to prevent. The
    /// `ablations` harness measures the resulting lost updates.
    pub buffer_events: bool,
    /// Deadline for every northbound operation: if the op has not
    /// completed within this span, `tick` aborts it — rolling back
    /// partially-put destination state (moves), dropping buffered
    /// reprocess events, releasing the op's bookkeeping, and notifying
    /// the application with [`Error::Timeout`] (or
    /// [`Error::MbUnreachable`] when the embedding reported a crash).
    pub op_deadline: SimDuration,
    /// Initial backoff before the first retry of an idempotent simple
    /// request (config reads, stats). Doubles per attempt.
    pub retry_backoff: SimDuration,
    /// Maximum retries for idempotent simple requests. Non-idempotent
    /// requests (writes, transfers) are never retried — they fail at
    /// the deadline instead.
    pub max_retries: u32,
    /// Maximum number of times a stalled, timed-out, or disconnected
    /// transfer (move/clone/merge) is resumed from its last acked chunk
    /// before the controller gives up and aborts. 0 (the default)
    /// preserves the legacy fail-fast behaviour: any stall or endpoint
    /// loss aborts the operation immediately.
    pub max_transfer_resumes: u32,
    /// How long a transfer may sit with outstanding gets or puts and no
    /// message activity before `tick` treats it as stalled (a message
    /// was lost) and resumes it.
    pub resume_after: SimDuration,
    /// Sliding-window size for streamed state transfers: at most this
    /// many puts are in flight (issued, unacked) per operation; further
    /// chunks queue and are released as acks open slots, so the
    /// in-flight ledger — and everything resume must rescan — stays
    /// O(window) regardless of transfer size. 0 disables windowing
    /// (fire everything immediately, the pre-window behaviour).
    pub transfer_window: u32,
    /// Content-addressed per-flow transfers (negotiate-then-reference):
    /// stream `ChunkRef` manifests instead of full puts, and bodies only
    /// for the hashes the destination reports missing. On (the default),
    /// repeated and resumed moves cost reference-sized frames instead of
    /// re-shipping every chunk body. Off restores the legacy
    /// `Put*Perflow` streaming; final state is identical either way,
    /// which the conformance suite asserts across both modes.
    pub content_cache: bool,
    /// How many times a chain rollback re-attempts one failed
    /// compensating reverse move before the chain is abandoned with
    /// [`openmb_types::Error`] `OpFailed("chain rollback incomplete")`.
    /// Reverse moves target an endpoint that just failed, so retries are
    /// paced by the maintenance tick / reachability events rather than
    /// fired back-to-back.
    pub chain_rollback_retries: u32,
    /// Number of controller shards. Read once when a
    /// [`crate::controller::ControllerCore`] is constructed (mutating it
    /// afterwards has no effect — shard count is structural). 1 (the
    /// default) is the pre-sharding single-stream controller; N > 1 lets
    /// operations on disjoint flowspaces proceed through independent
    /// shards in parallel.
    pub shards: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            quiesce_after: SimDuration::from_millis(500),
            compress_transfers: false,
            buffer_events: true,
            op_deadline: SimDuration::from_secs(10),
            retry_backoff: SimDuration::from_millis(100),
            max_retries: 3,
            max_transfer_resumes: 0,
            resume_after: SimDuration::from_millis(400),
            transfer_window: 64,
            content_cache: true,
            chain_rollback_retries: 16,
            shards: 1,
        }
    }
}

/// One snapshot of a transfer's ledger and the core's cache counters —
/// the typed replacement for the old `puts_in_flight`/`puts_queued`/
/// `ack_set_size`/`puts_in_flight_peak` accessor sprawl. Taken with
/// [`ControllerShard::transfer_ledger_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferLedgerStats {
    /// Puts (references or legacy bodies) issued and unacked for the
    /// op — the ledger the window bounds. 0 for unknown ops.
    pub puts_in_flight: usize,
    /// Puts created but deferred by the window for the op.
    pub puts_queued: usize,
    /// Size of the op's sparse acked-seq set above the watermark —
    /// bounded by the window under in-order delivery (the regression
    /// guard against unbounded per-chunk ack state).
    pub ack_set_size: usize,
    /// Chunk bodies streaming for the op in answer to `ChunkNeed`s.
    /// Bodies ride alongside the reference window, not inside it.
    pub bodies_in_flight: usize,
    /// Largest in-flight put ledger observed across ALL ops — with a
    /// `transfer_window` set this must never exceed the window.
    /// Core-wide, populated whatever `op` is passed (so callers that
    /// only want the peak may pass any op id).
    pub in_flight_peak: usize,
    /// Core-wide: references acked without the destination requesting
    /// the body — the chunk was already in its content store.
    pub cache_hits: u64,
    /// Core-wide: references the destination answered with `ChunkNeed`.
    pub cache_misses: u64,
    /// Core-wide: `ChunkBody` messages streamed (≥ `cache_misses`:
    /// duplicated needs re-elicit bodies).
    pub bodies_sent: u64,
    /// Core-wide: wire bytes saved by reference-only deliveries — the
    /// encoded size of the put each cache hit would have cost, minus
    /// the reference actually sent.
    pub bytes_saved: u64,
}

/// The MB controller state machine.
///
/// One owed state delete (see `ControllerShard::pending_deletes`).
#[derive(Debug, Clone)]
struct PendingDelete {
    mb: MbId,
    /// Sub-op id reused verbatim on every (re)send, so the ack
    /// (`DeleteAck` or `OpAck`) matches no matter which attempt got
    /// through.
    sub: OpId,
    /// The delete message itself, re-sent as-is (all delete variants
    /// are idempotent at the MB).
    msg: Message,
    /// Next (re)send instant; `None` parks the entry until the MB
    /// reattaches. `SimTime::ZERO` means due at the next tick.
    due: Option<SimTime>,
    /// Re-sends left before giving up (bounds the tick chain so a
    /// destination that stops acking cannot keep the controller's
    /// maintenance timer alive forever).
    left: u32,
}

/// `Clone` so embeddings can journal a snapshot of the whole machine
/// (e.g. `ControllerNode`'s crash/restore journal) and restore it after
/// a controller crash without replaying the message history.
#[derive(Clone)]
pub struct ControllerShard {
    /// Registered middleboxes (application-visible handles).
    mbs: Vec<MbId>,
    next_op: u64,
    /// Op-id allocation stride: this shard hands out
    /// `first, first + stride, first + 2·stride, …`, so N shards with
    /// stride N and distinct residues never collide and
    /// `(id - 1) % stride` recovers the owning shard in O(1).
    op_stride: u64,
    ops: HashMap<OpId, OpState>,
    sub_ops: HashMap<OpId, (OpId, SubRole)>,
    /// Introspection subscription per MB (controller-side record).
    subscriptions: HashMap<MbId, EventFilter>,
    /// MBs the embedding has reported as crashed/unreachable. Every
    /// northbound call naming one fails fast with
    /// [`Error::MbUnreachable`] until `mark_reachable` clears it.
    unreachable: HashSet<MbId>,
    /// State deletes owed to an MB: shared-state rollbacks
    /// (`DeleteState`) after a clone/merge abort, per-flow deletes at
    /// the destination after a move abort, and per-flow deletes at the
    /// source when a completed move quiesces. An entry lives until the
    /// MB's ack closes it: the delete is re-sent with backoff from
    /// `tick` (every variant is idempotent at the MB — the put log
    /// revokes by sub-op id; per-flow deletes delete by pattern),
    /// parked while the MB is unreachable, and re-sent on reattach.
    /// Without this ledger a single dropped delete would orphan moved
    /// or merged state forever.
    pending_deletes: Vec<PendingDelete>,
    pub config: ControllerConfig,
    /// Counters for experiments (messages brokered, events buffered...).
    pub messages_handled: u64,
    pub events_buffered_peak: usize,
    /// Largest in-flight put ledger observed across all ops — with a
    /// `transfer_window` set this must never exceed the window, which
    /// the conformance suite and `scale_bench` both assert (via
    /// [`ControllerShard::transfer_ledger_stats`]).
    in_flight_peak: usize,
    /// Content-cache counters, core-wide (they outlive op cleanup);
    /// surfaced through [`TransferLedgerStats`].
    cache_hits: u64,
    cache_misses: u64,
    bodies_sent: u64,
    bytes_saved: u64,
    /// Flight recorder for op spans (disabled unless the embedding
    /// installs one via [`ControllerShard::set_recorder`]). Cloning the
    /// core (journaling) shares the recorder, so a restored snapshot
    /// keeps appending to the same timeline.
    obs: Recorder,
    obs_tag: NodeTag,
}

impl ControllerShard {
    /// A standalone single-shard controller: op ids `1, 2, 3, …` —
    /// exactly the pre-sharding allocation order.
    pub fn new(config: ControllerConfig) -> Self {
        Self::with_op_space(config, 1, 1)
    }

    /// A shard allocating op ids from its own residue class: `first`,
    /// `first + stride`, `first + 2·stride`, … The facade constructs
    /// shard `s` of `N` with `(s + 1, N)`.
    ///
    /// # Panics
    /// Panics if `stride == 0`, `first == 0` (op id 0 is reserved for
    /// "no op"), or `first > stride` (the residue must be in range).
    pub fn with_op_space(config: ControllerConfig, first: u64, stride: u64) -> Self {
        assert!(stride > 0, "op-id stride must be positive");
        assert!(first > 0 && first <= stride, "first op id must be in 1..=stride");
        ControllerShard {
            mbs: Vec::new(),
            next_op: first,
            op_stride: stride,
            ops: HashMap::new(),
            sub_ops: HashMap::new(),
            subscriptions: HashMap::new(),
            unreachable: HashSet::new(),
            pending_deletes: Vec::new(),
            config,
            messages_handled: 0,
            events_buffered_peak: 0,
            in_flight_peak: 0,
            cache_hits: 0,
            cache_misses: 0,
            bodies_sent: 0,
            bytes_saved: 0,
            obs: Recorder::disabled(),
            obs_tag: NodeTag::NONE,
        }
    }

    /// Install a flight recorder: every operation's lifecycle events
    /// (`Issued`, `ChunkAcked`, `Parked`, `Resumed`, `DeleteRetried`,
    /// `Aborted`, `Completed`) are recorded into it under the node name
    /// "controller".
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.obs_tag = rec.register("controller");
        self.obs = rec;
    }

    /// Install a recorder under an already-registered node tag. The
    /// facade registers "controller" once and shares the tag across all
    /// shards, so a sharded controller's events merge into one timeline
    /// column instead of N duplicate nodes.
    pub fn set_recorder_with_tag(&mut self, rec: Recorder, tag: NodeTag) {
        self.obs_tag = tag;
        self.obs = rec;
    }

    /// The installed flight recorder handle (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// The node tag this core records under ([`NodeTag::NONE`] while no
    /// recorder is installed). Embeddings use it to attribute their own
    /// transport-level events to the controller's timeline.
    pub fn recorder_tag(&self) -> NodeTag {
        self.obs_tag
    }

    /// Register a middlebox; returns its handle.
    pub fn register_mb(&mut self) -> MbId {
        let id = MbId(self.mbs.len() as u32);
        self.mbs.push(id);
        id
    }

    fn alloc_op(&mut self) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += self.op_stride;
        id
    }

    fn alloc_sub(&mut self, parent: OpId, role: SubRole) -> OpId {
        let id = self.alloc_op();
        self.sub_ops.insert(id, (parent, role));
        id
    }

    /// Fresh per-op state with the deadline stamped from config.
    fn new_op_state(&self, kind: OpKind, src: MbId, dst: MbId, now: SimTime) -> OpState {
        let mut st = OpState::new(kind, src, dst, now, now.after(self.config.op_deadline));
        st.resumes_left = self.config.max_transfer_resumes;
        st
    }

    /// First unusable MB among `mbs`: unregistered handles surface as
    /// [`Error::UnknownMb`], crashed ones as [`Error::MbUnreachable`].
    fn mb_error(&self, mbs: &[MbId]) -> Option<Error> {
        for &m in mbs {
            if !self.mbs.contains(&m) {
                return Some(Error::UnknownMb(m));
            }
            if self.unreachable.contains(&m) {
                return Some(Error::MbUnreachable(m));
            }
        }
        None
    }

    /// Record an operation that failed validation before any southbound
    /// traffic, and deliver the typed failure immediately.
    #[allow(clippy::too_many_arguments)]
    fn fail_fast(
        &mut self,
        op: OpId,
        kind: OpKind,
        src: MbId,
        dst: MbId,
        error: Error,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        let mut st = self.new_op_state(kind, src, dst, now);
        st.completed = true;
        st.quiesced = true;
        self.ops.insert(op, st);
        self.obs.record_with(now.0, self.obs_tag, Some(op.0), None, || SpanEvent::Aborted {
            error: error.to_string(),
        });
        out.push(Action::Notify(Completion::Failed { op, error, dropped_events: 0 }));
    }

    /// Arm the retry schedule for an idempotent simple request. The
    /// resent message reuses the original sub-op id, so a duplicate
    /// reply lands on an already-completed op and is absorbed by the
    /// `completed` guards.
    fn arm_retry(&mut self, op: OpId, target: MbId, request: Message, now: SimTime) {
        let backoff = self.config.retry_backoff;
        if let Some(st) = self.ops.get_mut(&op) {
            st.retry = Some(RetryState {
                target,
                request,
                next_at: now.after(backoff),
                backoff,
                left: self.config.max_retries,
            });
        }
    }

    // ------------------------------------------------------------------
    // Northbound API (§5)
    // ------------------------------------------------------------------

    /// `readConfig(SrcMB, HierarchicalKey)`.
    pub fn read_config(
        &mut self,
        src: MbId,
        key: HierarchicalKey,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[src]) {
            self.fail_fast(op, OpKind::ReadConfig, src, src, e, now, out);
            return op;
        }
        self.ops.insert(op, self.new_op_state(OpKind::ReadConfig, src, src, now));
        self.span(now, op, None, SpanEvent::Issued { kind: "readConfig" });
        let sub = self.alloc_sub(op, SubRole::Simple);
        let msg = Message::GetConfig { op: sub, key };
        self.span(now, op, Some(sub), SpanEvent::Issued { kind: "getConfig" });
        // Config reads are idempotent: retry on a lost request/reply.
        self.arm_retry(op, src, msg.clone(), now);
        out.push(Action::ToMb(src, msg));
        op
    }

    /// Record a span event for `op` (and optionally a sub-op) at `now`.
    #[inline]
    fn span(&self, now: SimTime, op: OpId, sub: Option<OpId>, ev: SpanEvent) {
        self.obs.record(now.0, self.obs_tag, Some(op.0), sub.map(|s| s.0), ev);
    }

    /// `writeConfig(DstMB, HierarchicalKey, values)`.
    pub fn write_config(
        &mut self,
        dst: MbId,
        key: HierarchicalKey,
        values: Vec<ConfigValue>,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[dst]) {
            self.fail_fast(op, OpKind::WriteConfig, dst, dst, e, now, out);
            return op;
        }
        self.ops.insert(op, self.new_op_state(OpKind::WriteConfig, dst, dst, now));
        self.span(now, op, None, SpanEvent::Issued { kind: "writeConfig" });
        let sub = self.alloc_sub(op, SubRole::Simple);
        self.span(now, op, Some(sub), SpanEvent::Issued { kind: "setConfig" });
        out.push(Action::ToMb(dst, Message::SetConfig { op: sub, key, values }));
        op
    }

    /// `delConfig` — a composition convenience over the southbound API.
    pub fn del_config(
        &mut self,
        dst: MbId,
        key: HierarchicalKey,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[dst]) {
            self.fail_fast(op, OpKind::DelConfig, dst, dst, e, now, out);
            return op;
        }
        self.ops.insert(op, self.new_op_state(OpKind::DelConfig, dst, dst, now));
        self.span(now, op, None, SpanEvent::Issued { kind: "delConfig" });
        let sub = self.alloc_sub(op, SubRole::Simple);
        self.span(now, op, Some(sub), SpanEvent::Issued { kind: "delConfig" });
        out.push(Action::ToMb(dst, Message::DelConfig { op: sub, key }));
        op
    }

    /// `stats(SrcMB, HeaderFieldList)`.
    pub fn stats(
        &mut self,
        src: MbId,
        key: HeaderFieldList,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[src]) {
            self.fail_fast(op, OpKind::Stats, src, src, e, now, out);
            return op;
        }
        self.ops.insert(op, self.new_op_state(OpKind::Stats, src, src, now));
        self.span(now, op, None, SpanEvent::Issued { kind: "stats" });
        let sub = self.alloc_sub(op, SubRole::Simple);
        self.span(now, op, Some(sub), SpanEvent::Issued { kind: "getStats" });
        let msg = Message::GetStats { op: sub, key };
        // Stats reads are idempotent: retry on a lost request/reply.
        self.arm_retry(op, src, msg.clone(), now);
        out.push(Action::ToMb(src, msg));
        op
    }

    /// Subscribe the application to introspection events from `mb`.
    pub fn enable_events(
        &mut self,
        mb: MbId,
        filter: EventFilter,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[mb]) {
            self.fail_fast(op, OpKind::EnableEvents, mb, mb, e, now, out);
            return op;
        }
        self.ops.insert(op, self.new_op_state(OpKind::EnableEvents, mb, mb, now));
        self.span(now, op, None, SpanEvent::Issued { kind: "enableEvents" });
        self.subscriptions.insert(mb, filter.clone());
        let sub = self.alloc_sub(op, SubRole::Simple);
        self.span(now, op, Some(sub), SpanEvent::Issued { kind: "enableEvents" });
        out.push(Action::ToMb(mb, Message::EnableEvents { op: sub, filter }));
        op
    }

    /// `moveInternal(SrcMB, DstMB, HeaderFieldList)` — Figure 5.
    pub fn move_internal(
        &mut self,
        src: MbId,
        dst: MbId,
        key: HeaderFieldList,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[src, dst]) {
            self.fail_fast(op, OpKind::Move, src, dst, e, now, out);
            return op;
        }
        let mut st = self.new_op_state(OpKind::Move, src, dst, now);
        st.pattern = key;
        self.ops.insert(op, st);
        self.span(now, op, None, SpanEvent::Issued { kind: "moveInternal" });
        self.issue_transfer_gets(op, now, out);
        op
    }

    /// `cloneSupport(SrcMB, DstMB)` — shared supporting state only.
    pub fn clone_support(
        &mut self,
        src: MbId,
        dst: MbId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[src, dst]) {
            self.fail_fast(op, OpKind::Clone, src, dst, e, now, out);
            return op;
        }
        self.ops.insert(op, self.new_op_state(OpKind::Clone, src, dst, now));
        self.span(now, op, None, SpanEvent::Issued { kind: "cloneSupport" });
        self.issue_transfer_gets(op, now, out);
        op
    }

    /// `mergeInternal(SrcMB, DstMB)` — shared supporting + reporting.
    pub fn merge_internal(
        &mut self,
        src: MbId,
        dst: MbId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        if let Some(e) = self.mb_error(&[src, dst]) {
            self.fail_fast(op, OpKind::Merge, src, dst, e, now, out);
            return op;
        }
        self.ops.insert(op, self.new_op_state(OpKind::Merge, src, dst, now));
        self.span(now, op, None, SpanEvent::Issued { kind: "mergeInternal" });
        self.issue_transfer_gets(op, now, out);
        op
    }

    /// Issue the get stream(s) of a transfer op already inserted in the
    /// op table: allocate the sub-ops, record their spans, remember the
    /// requests for resume, and push them to the source. The one place
    /// a transfer's southbound traffic starts — both the direct
    /// admission path and [`ControllerShard::release_transfer`] land
    /// here, so deferred transfers emit the exact same stream.
    fn issue_transfer_gets(&mut self, op: OpId, now: SimTime, out: &mut Vec<Action>) {
        let Some(st) = self.ops.get(&op) else { return };
        let (kind, src, key) = (st.kind, st.src, st.pattern);
        match kind {
            OpKind::Move => {
                let gs = self.alloc_sub(op, SubRole::GetSupport);
                let gr = self.alloc_sub(op, SubRole::GetReport);
                self.span(now, op, Some(gs), SpanEvent::Issued { kind: "getSupportPerflow" });
                self.span(now, op, Some(gr), SpanEvent::Issued { kind: "getReportPerflow" });
                let mgs = Message::GetSupportPerflow { op: gs, key };
                let mgr = Message::GetReportPerflow { op: gr, key };
                if let Some(st) = self.ops.get_mut(&op) {
                    st.gets_outstanding = 2;
                    st.get_subs.extend([gs, gr]);
                    st.get_reqs.push((gs, mgs.clone()));
                    st.get_reqs.push((gr, mgr.clone()));
                }
                out.push(Action::ToMb(src, mgs));
                out.push(Action::ToMb(src, mgr));
            }
            OpKind::Clone => {
                let g = self.alloc_sub(op, SubRole::GetSharedSupport);
                self.span(now, op, Some(g), SpanEvent::Issued { kind: "getSupportShared" });
                let mg = Message::GetSupportShared { op: g };
                if let Some(st) = self.ops.get_mut(&op) {
                    st.gets_outstanding = 1;
                    st.get_subs.push(g);
                    st.get_reqs.push((g, mg.clone()));
                }
                out.push(Action::ToMb(src, mg));
            }
            OpKind::Merge => {
                let gs = self.alloc_sub(op, SubRole::GetSharedSupport);
                let gr = self.alloc_sub(op, SubRole::GetSharedReport);
                self.span(now, op, Some(gs), SpanEvent::Issued { kind: "getSupportShared" });
                self.span(now, op, Some(gr), SpanEvent::Issued { kind: "getReportShared" });
                let mgs = Message::GetSupportShared { op: gs };
                let mgr = Message::GetReportShared { op: gr };
                if let Some(st) = self.ops.get_mut(&op) {
                    st.gets_outstanding = 2;
                    st.get_subs.extend([gs, gr]);
                    st.get_reqs.push((gs, mgs.clone()));
                    st.get_reqs.push((gr, mgr.clone()));
                }
                out.push(Action::ToMb(src, mgs));
                out.push(Action::ToMb(src, mgr));
            }
            _ => debug_assert!(false, "issue_transfer_gets on a non-transfer op"),
        }
    }

    /// Reserve a transfer whose admission the router deferred
    /// ([`crate::router::Admission::Defer`]): allocate the op id and
    /// state — so the conflict entry registered against it pins later
    /// overlapping admissions — but issue no southbound traffic. The
    /// op parks as [`ParkReason::CrossShardConflict`] until the facade
    /// calls [`ControllerShard::release_transfer`]; the op deadline
    /// (running from *now*) backstops blockers that never close.
    /// Endpoint validation runs here exactly as on the direct path, so
    /// a doomed transfer still fails fast instead of queueing.
    pub fn reserve_transfer(
        &mut self,
        kind: TransferKind,
        src: MbId,
        dst: MbId,
        key: HeaderFieldList,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> OpId {
        let op = self.alloc_op();
        let okind = kind.op_kind();
        if let Some(e) = self.mb_error(&[src, dst]) {
            self.fail_fast(op, okind, src, dst, e, now, out);
            return op;
        }
        let mut st = self.new_op_state(okind, src, dst, now);
        st.pattern = key;
        st.deferred = true;
        self.ops.insert(op, st);
        self.span(now, op, None, SpanEvent::Issued { kind: kind.api_name() });
        self.span(now, op, None, SpanEvent::Parked { reason: ParkReason::CrossShardConflict });
        op
    }

    /// Release a reserved transfer: its cross-shard blockers have all
    /// closed, so it may finally issue its gets. Endpoints are
    /// re-validated — they may have died while the op waited — and a
    /// dead one aborts the op instead of streaming into a down link.
    /// The deadline restarts so the released attempt gets the full
    /// window the direct path would have had.
    pub fn release_transfer(&mut self, op: OpId, now: SimTime, out: &mut Vec<Action>) {
        let Some(st) = self.ops.get(&op) else { return };
        if !st.deferred || st.completed || st.quiesced {
            return;
        }
        let (src, dst) = (st.src, st.dst);
        if let Some(e) = self.mb_error(&[src, dst]) {
            if let Some(st) = self.ops.get_mut(&op) {
                st.deferred = false;
            }
            self.abort_op(op, e, now, out);
            return;
        }
        let deadline = now.after(self.config.op_deadline);
        if let Some(st) = self.ops.get_mut(&op) {
            st.deferred = false;
            st.last_activity = now;
            st.deadline = deadline;
        }
        self.span(now, op, None, SpanEvent::Resumed { from_seq: 0 });
        self.issue_transfer_gets(op, now, out);
    }

    /// Whether `op` is still reserved awaiting release (tests,
    /// diagnostics).
    pub fn op_deferred(&self, op: OpId) -> bool {
        self.ops.get(&op).is_some_and(|st| st.deferred)
    }

    /// Explicitly finish a move/clone/merge transaction now: send the
    /// EndSync (and, for moves, the deletes) without waiting for the
    /// quiescence timer. Control applications use this when *they* know
    /// the routing transition is complete — e.g. closing an RE clone's
    /// sync window at the instant the encoder switches caches (§6.1
    /// step 5), where event quiescence would never occur because shared
    /// state is updated by every packet.
    pub fn end_op(&mut self, op: OpId, now: SimTime, out: &mut Vec<Action>) {
        // The source tagged its sync marks with the get sub-ops;
        // quiesce_op closes each of them (and deletes moved state).
        self.quiesce_op(op, now, out);
    }

    // ------------------------------------------------------------------
    // Southbound message handling
    // ------------------------------------------------------------------

    /// Process one message arriving from middlebox `from`.
    pub fn handle_mb_message(
        &mut self,
        from: MbId,
        msg: Message,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        // A coalesced frame counts as its contents: unpack before the
        // per-message counter so embeddings that batch replies (TCP
        // serve loops, the simulator's MB nodes) keep the same
        // messages-brokered accounting as unbatched ones.
        if matches!(msg, Message::Batch { .. }) {
            msg.for_each_unbatched(|m| self.handle_mb_message(from, m, now, out));
            return;
        }
        self.messages_handled += 1;
        match msg {
            Message::Chunk { op: sub, chunk } => {
                let Some(&(parent, ref role)) = self.sub_ops.get(&sub) else { return };
                let role = role.clone();
                let is_report = match role {
                    SubRole::GetSupport => false,
                    SubRole::GetReport => true,
                    _ => return,
                };
                let Some(st) = self.ops.get_mut(&parent) else { return };
                if st.completed || st.quiesced {
                    return;
                }
                st.last_activity = now;
                st.get_seen.entry(sub).or_default().insert(chunk.key);
                // A duplicated (fault-injected) or re-streamed (resume)
                // chunk: its put — same sub id — is already in flight or
                // acked, so issuing a second one would double-count.
                if !st.streamed.insert((is_report, chunk.key)) {
                    self.maybe_finish_get(parent, sub, now, out);
                    return;
                }
                st.chunks += 1;
                st.pending_keys.insert(chunk.key);
                st.puts_outstanding += 1;
                let seq = st.next_chunk_seq;
                st.next_chunk_seq += 1;
                let (put_role, mk): (SubRole, fn(OpId, openmb_types::StateChunk) -> Message) =
                    if is_report {
                        (SubRole::PutReport { key: chunk.key, seq }, |op, chunk| {
                            Message::PutReportPerflow { op, chunk }
                        })
                    } else {
                        (SubRole::PutSupport { key: chunk.key, seq }, |op, chunk| {
                            Message::PutSupportPerflow { op, chunk }
                        })
                    };
                let put_sub = self.alloc_sub(parent, put_role);
                let m = if self.config.content_cache {
                    // Negotiate-then-reference: put a (key, hash)
                    // manifest entry in the window instead of the body.
                    // The body is parked in `ref_bodies` until the ack —
                    // streamed only if the destination reports a miss.
                    let hash = openmb_store::content_hash(chunk.data.as_wire());
                    let class = if is_report {
                        wire::ChunkClass::Report
                    } else {
                        wire::ChunkClass::Support
                    };
                    let key = chunk.key;
                    if let Some(st) = self.ops.get_mut(&parent) {
                        st.ref_bodies.insert(seq, (chunk, hash));
                    }
                    Message::ChunkRef { op: put_sub, class, key, hash }
                } else {
                    mk(put_sub, chunk)
                };
                self.span(now, parent, Some(put_sub), SpanEvent::Issued { kind: m.kind_name() });
                self.enqueue_put(parent, seq, m, now, out);
                self.maybe_finish_get(parent, sub, now, out);
            }
            Message::GetAck { op: sub, count } => {
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                let Some(st) = self.ops.get_mut(&parent) else { return };
                if st.completed || st.quiesced || st.done_gets.contains(&sub) {
                    return;
                }
                st.last_activity = now;
                // The ack announces how many chunks the source streamed.
                // The get only closes once that many distinct chunks have
                // arrived — a dropped chunk leaves it open for resume
                // instead of silently losing state.
                st.get_expected.insert(sub, count);
                self.maybe_finish_get(parent, sub, now, out);
            }
            Message::SharedChunk { op: sub, chunk } => {
                let Some(&(parent, ref role)) = self.sub_ops.get(&sub) else { return };
                let role = role.clone();
                if !matches!(role, SubRole::GetSharedSupport | SubRole::GetSharedReport) {
                    return;
                }
                let Some(st) = self.ops.get_mut(&parent) else { return };
                if st.completed || st.quiesced {
                    return;
                }
                // Shared puts MERGE at the destination — not idempotent —
                // so a duplicated SharedChunk must not produce a second
                // put. The get sub id doubles as the dedup key: a shared
                // get yields exactly one chunk.
                if !st.done_gets.insert(sub) {
                    return;
                }
                st.gets_outstanding = st.gets_outstanding.saturating_sub(1);
                st.puts_outstanding += 1;
                st.chunks += 1;
                st.last_activity = now;
                let seq = st.next_chunk_seq;
                st.next_chunk_seq += 1;
                let (put_sub, m) = match role {
                    SubRole::GetSharedSupport => {
                        let s = self.alloc_sub(parent, SubRole::PutSharedSupport { seq });
                        (s, Message::PutSupportShared { op: s, chunk })
                    }
                    SubRole::GetSharedReport => {
                        let s = self.alloc_sub(parent, SubRole::PutSharedReport { seq });
                        (s, Message::PutReportShared { op: s, chunk })
                    }
                    _ => unreachable!(),
                };
                self.span(now, parent, Some(put_sub), SpanEvent::Issued { kind: m.kind_name() });
                if let Some(st) = self.ops.get_mut(&parent) {
                    st.shared_puts.push(put_sub);
                }
                self.enqueue_put(parent, seq, m, now, out);
            }
            Message::ChunkNeed { op: sub, hash } => {
                // Destination-side cache miss: stream the parked body.
                // The ref's window slot stays occupied — the exchange
                // closes with the same PutAck either way.
                let Some(&(parent, ref role)) = self.sub_ops.get(&sub) else { return };
                let (seq, is_report) = match role {
                    SubRole::PutSupport { seq, .. } => (*seq, false),
                    SubRole::PutReport { seq, .. } => (*seq, true),
                    _ => return,
                };
                let Some(st) = self.ops.get_mut(&parent) else { return };
                if st.completed || st.quiesced {
                    return;
                }
                st.last_activity = now;
                let Some((chunk, stored_hash)) = st.ref_bodies.get(&seq) else { return };
                if *stored_hash != hash {
                    // A need for a hash we never referenced under this
                    // sub-op: stale or corrupted; the stall-resume path
                    // will re-send the ref if something was really lost.
                    return;
                }
                if st.needed.insert(seq) {
                    self.cache_misses += 1;
                }
                // A duplicated need re-elicits the body (the first may
                // have been dropped); the destination's store and the
                // ack dedup make the re-send harmless.
                self.bodies_sent += 1;
                let class =
                    if is_report { wire::ChunkClass::Report } else { wire::ChunkClass::Support };
                let m = Message::ChunkBody {
                    op: sub,
                    class,
                    key: chunk.key,
                    hash,
                    data: chunk.data.clone(),
                };
                out.push(Action::ToMb(st.dst, m));
            }
            Message::PutAck { op: sub, key } => {
                let Some(&(parent, ref role)) = self.sub_ops.get(&sub) else { return };
                let seq = match role {
                    SubRole::PutSupport { seq, .. }
                    | SubRole::PutReport { seq, .. }
                    | SubRole::PutSharedSupport { seq }
                    | SubRole::PutSharedReport { seq } => Some(*seq),
                    _ => None,
                };
                if let Some(st) = self.ops.get_mut(&parent) {
                    // A late or duplicated ack for an op that already
                    // reached a terminal state (completed, quiesced, or
                    // aborted — abort sets both flags) must not
                    // resurrect ledger state or refill the window.
                    if st.completed || st.quiesced {
                        return;
                    }
                    if let Some(seq) = seq {
                        // Dedup by (op, chunk_seq): a duplicated PutAck —
                        // fault injection, or a resumed put racing its
                        // original ack — must not double-decrement the
                        // outstanding-put count.
                        if !st.mark_acked(seq) {
                            return;
                        }
                        st.unacked_puts.remove(&seq);
                        if let Some((chunk, hash)) = st.ref_bodies.remove(&seq) {
                            if st.needed.remove(&seq) {
                                // The body streamed; nothing was saved.
                            } else {
                                // Reference-only delivery: the savings
                                // are the put we did not send, minus the
                                // ref we did. (Message construction here
                                // is cheap — the chunk's Bytes are
                                // refcounted.)
                                self.cache_hits += 1;
                                let ref_len = wire::encoded_len(&Message::ChunkRef {
                                    op: sub,
                                    class: wire::ChunkClass::Support,
                                    key: chunk.key,
                                    hash,
                                });
                                let put_len = wire::encoded_len(&Message::PutSupportPerflow {
                                    op: sub,
                                    chunk,
                                });
                                self.bytes_saved += (put_len.saturating_sub(ref_len)) as u64;
                            }
                        }
                        self.obs.record(
                            now.0,
                            self.obs_tag,
                            Some(parent.0),
                            Some(sub.0),
                            SpanEvent::ChunkAcked { seq },
                        );
                    }
                    st.puts_outstanding = st.puts_outstanding.saturating_sub(1);
                    st.last_activity = now;
                    if let Some(k) = key {
                        st.pending_keys.remove(&k);
                        st.acked_keys.push(k);
                        // Release any buffered events this put unblocks.
                        let dst = st.dst;
                        let mut released = Vec::new();
                        let mut kept = Vec::new();
                        for ev in st.buffered.drain(..) {
                            if k.matches_bidi(&ev.key) {
                                released.push(ev);
                            } else {
                                kept.push(ev);
                            }
                        }
                        st.buffered = kept;
                        for ev in released {
                            st.events_forwarded += 1;
                            out.push(Action::ToMb(
                                dst,
                                Message::ReprocessPacket {
                                    op: parent,
                                    key: ev.key,
                                    packet: ev.packet,
                                },
                            ));
                        }
                    }
                }
                self.refill_window(parent, now, out);
                self.maybe_complete(parent, now, out);
            }
            Message::OpAck { op: sub } => {
                let Some(&(parent, ref role)) = self.sub_ops.get(&sub) else { return };
                let role = role.clone();
                match role {
                    // A shared get that found no state: nothing to put.
                    SubRole::GetSharedSupport | SubRole::GetSharedReport => {
                        if let Some(st) = self.ops.get_mut(&parent) {
                            // Same dedup key as SharedChunk: the stream
                            // closes exactly once even if the empty-ack
                            // is duplicated or re-elicited by a resume.
                            if st.completed || st.quiesced || !st.done_gets.insert(sub) {
                                return;
                            }
                            st.gets_outstanding = st.gets_outstanding.saturating_sub(1);
                            st.last_activity = now;
                        }
                        self.maybe_complete(parent, now, out);
                    }
                    SubRole::Simple => {
                        if let Some(st) = self.ops.get_mut(&parent) {
                            if !st.completed {
                                st.completed = true;
                                self.obs.record(
                                    now.0,
                                    self.obs_tag,
                                    Some(parent.0),
                                    Some(sub.0),
                                    SpanEvent::Completed,
                                );
                                out.push(Action::Notify(Completion::Ack { op: parent }));
                            }
                        }
                    }
                    SubRole::DelSupport | SubRole::DelReport | SubRole::DelShared => {
                        // Quiescence/abort deletes; the ack closes the
                        // ledger entry and stops the re-send chain.
                        // Nothing to report northbound. The span fires
                        // only when an entry actually closed —
                        // duplicated acks must not inflate the
                        // monitor's delete accounting.
                        let before = self.pending_deletes.len();
                        self.pending_deletes.retain(|r| r.sub != sub);
                        if self.pending_deletes.len() < before {
                            self.span(now, parent, Some(sub), SpanEvent::DeleteAcked);
                        }
                    }
                    _ => {}
                }
            }
            Message::DeleteAck { op: sub, restored: _ } => {
                // Confirmation of a shared-state rollback. The aborted
                // op already reported its failure, so there is nothing
                // left to notify; the ack closes the ledger entry and
                // stops the re-send chain.
                let before = self.pending_deletes.len();
                self.pending_deletes.retain(|r| r.sub != sub);
                if self.pending_deletes.len() < before {
                    if let Some(&(parent, _)) = self.sub_ops.get(&sub) {
                        self.span(now, parent, Some(sub), SpanEvent::DeleteAcked);
                    }
                }
            }
            Message::ConfigValues { op: sub, pairs } => {
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                if let Some(st) = self.ops.get_mut(&parent) {
                    st.completed = true;
                }
                self.span(now, parent, Some(sub), SpanEvent::Completed);
                out.push(Action::Notify(Completion::Config { op: parent, pairs }));
            }
            Message::Stats { op: sub, stats } => {
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                if let Some(st) = self.ops.get_mut(&parent) {
                    st.completed = true;
                }
                self.span(now, parent, Some(sub), SpanEvent::Completed);
                out.push(Action::Notify(Completion::Stats { op: parent, stats }));
            }
            Message::EventMsg { event } => match event {
                Event::Reprocess { op: sub, key, packet } => {
                    // The MB tags events with the *get* sub-op id.
                    let parent = match self.sub_ops.get(&sub) {
                        Some(&(parent, _)) => parent,
                        // Events raised under the parent id directly
                        // (e.g. forwarded after completion).
                        None if self.ops.contains_key(&sub) => sub,
                        None => return,
                    };
                    let Some(st) = self.ops.get_mut(&parent) else { return };
                    st.last_activity = now;
                    let dst = st.dst;
                    // Buffer until the destination has ACKed the put for
                    // the state this event applies to (Fig 5). Forwarding
                    // the event *before* the put would let the put
                    // overwrite the replayed update at the destination —
                    // the §4.2.1 ordering violation. So an event is held
                    // while (a) its chunk's put is in flight, or (b) the
                    // get stream is still open and this key has not been
                    // ACKed (its chunk may not have been streamed yet).
                    let acked = st.acked_keys.iter().any(|k| k.matches_bidi(&key));
                    let pending = st.pending_keys.iter().any(|k| k.matches_bidi(&key));
                    let get_open = st.gets_outstanding > 0;
                    if self.config.buffer_events && (pending || (get_open && !acked)) {
                        st.buffered.push(BufferedEvent { key, packet });
                        self.events_buffered_peak =
                            self.events_buffered_peak.max(st.buffered.len());
                    } else {
                        st.events_forwarded += 1;
                        out.push(Action::ToMb(
                            dst,
                            Message::ReprocessPacket { op: parent, key, packet },
                        ));
                    }
                }
                Event::Introspection { code, key, values } => {
                    let pass = self
                        .subscriptions
                        .get(&from)
                        .map(|f| f.accepts(code, &key))
                        .unwrap_or(false);
                    if pass {
                        out.push(Action::Notify(Completion::MbEvent {
                            mb: from,
                            code,
                            key,
                            values,
                        }));
                    }
                }
            },
            Message::ErrorMsg { op: sub, error } => {
                // A southbound rejection aborts the whole operation:
                // for transfers this also rolls back partially-put
                // destination state and closes the sync window, so the
                // op releases its bookkeeping instead of lingering open.
                // A rejected delete also closes its ledger entry —
                // the MB has spoken; re-sending cannot change the
                // answer (the span marks the entry closed, same as an
                // ack, so the monitor's ledger drains).
                let before = self.pending_deletes.len();
                self.pending_deletes.retain(|r| r.sub != sub);
                let closed_delete = self.pending_deletes.len() < before;
                let Some(&(parent, _)) = self.sub_ops.get(&sub) else { return };
                if closed_delete {
                    self.span(now, parent, Some(sub), SpanEvent::DeleteAcked);
                }
                self.abort_op(parent, error, now, out);
            }
            _ => {
                // Controller never receives southbound requests.
            }
        }
    }

    /// The embedding observed `mb` crash or become unreachable. Every
    /// in-flight operation touching it is aborted with
    /// [`Error::MbUnreachable`] — unless it is a transfer with resume
    /// budget left, which is *parked* instead and resumed from its last
    /// acked chunk when the endpoint reattaches. Subsequent northbound
    /// calls naming `mb` fail fast until
    /// [`ControllerShard::mark_reachable`]. Completed transfers awaiting
    /// quiescence are finalized instead of aborted — their state already
    /// moved and the application already saw the completion; recovering
    /// from a post-completion crash is the application's job (see
    /// `apps::failover`).
    pub fn mark_unreachable(&mut self, mb: MbId, now: SimTime, out: &mut Vec<Action>) {
        if !self.unreachable.insert(mb) {
            return;
        }
        // Park owed deletes to this MB: no point re-sending into a
        // dead connection, and reattach re-sends them anyway.
        for r in self.pending_deletes.iter_mut().filter(|r| r.mb == mb) {
            r.due = None;
        }
        let mut touched: Vec<OpId> = self
            .ops
            .iter()
            .filter(|(_, st)| !st.quiesced && (st.src == mb || st.dst == mb))
            .map(|(id, _)| *id)
            .collect();
        // HashMap iteration order is arbitrary; sort so replays with the
        // same fault schedule emit byte-identical action streams.
        touched.sort();
        for op in touched {
            let Some(st) = self.ops.get_mut(&op) else { continue };
            if st.completed {
                if matches!(st.kind, OpKind::Move | OpKind::Clone | OpKind::Merge) {
                    // Finalize: close the sync window and (moves) delete
                    // at the source, if the source is still up.
                    self.quiesce_op(op, now, out);
                }
            } else if matches!(st.kind, OpKind::Move | OpKind::Clone | OpKind::Merge)
                && st.resumes_left > 0
                && !st.deferred
            {
                // (A still-deferred transfer falls through to abort:
                // it has sent nothing, so the abort is a pure notify,
                // and the release sweep will drop it as closed.)
                // Park: the transfer resumes when the endpoint returns.
                // The op deadline still backstops an MB that never does.
                st.suspended = true;
                self.obs.record(
                    now.0,
                    self.obs_tag,
                    Some(op.0),
                    None,
                    SpanEvent::Parked { reason: ParkReason::MbUnreachable { mb: mb.0 } },
                );
            } else {
                self.abort_op(op, Error::MbUnreachable(mb), now, out);
            }
        }
    }

    /// Clear the unreachable mark (the MB restarted and re-attached),
    /// send any state deletes that were deferred while it was down, and
    /// resume transfers parked on its account.
    pub fn mark_reachable(&mut self, mb: MbId, now: SimTime, out: &mut Vec<Action>) {
        self.unreachable.remove(&mb);
        let backoff = self.config.retry_backoff;
        for r in self.pending_deletes.iter_mut().filter(|r| r.mb == mb) {
            r.due = Some(now.after(backoff));
            out.push(Action::ToMb(r.mb, r.msg.clone()));
        }
        let mut parked: Vec<OpId> = self
            .ops
            .iter()
            .filter(|(_, st)| st.suspended && !st.completed && !st.quiesced)
            .map(|(id, _)| *id)
            .collect();
        parked.sort();
        for op in parked {
            // resume_op re-checks reachability: an op parked on a
            // *different* still-down endpoint stays parked.
            self.resume_op(op, now, out);
        }
    }

    /// Whether the embedding has marked `mb` unreachable.
    pub fn is_unreachable(&self, mb: MbId) -> bool {
        self.unreachable.contains(&mb)
    }

    /// Abort an in-flight operation: drop buffered reprocess events
    /// (their count is reported in the failure), roll back partially-put
    /// destination state — per-flow deletes for moves, a compensating
    /// `DeleteState` for the shared puts of a clone/merge — close the
    /// source's sync window, release the op's bookkeeping, and notify
    /// the application with the typed `error`.
    fn abort_op(&mut self, op: OpId, error: Error, now: SimTime, out: &mut Vec<Action>) {
        let Some(st) = self.ops.get_mut(&op) else { return };
        if st.completed || st.quiesced {
            return;
        }
        st.completed = true;
        st.quiesced = true;
        st.retry = None;
        let dropped_events = st.buffered.len();
        st.buffered.clear();
        st.pending_keys.clear();
        // Drop the transfer pipeline outright: a late ack after this
        // point must find nothing to refill the window from.
        st.unacked_puts.clear();
        st.queued_puts.clear();
        st.ref_bodies.clear();
        st.needed.clear();
        st.gets_outstanding = 0;
        st.puts_outstanding = 0;
        let (kind, src, dst, pattern) = (st.kind, st.src, st.dst, st.pattern);
        let had_chunks = st.chunks > 0;
        let get_subs = std::mem::take(&mut st.get_subs);
        let shared_puts = std::mem::take(&mut st.shared_puts);
        // Terminal event first: the compensating deletes below are
        // consequences of the abort, and the invariant monitor insists
        // on that order (deletes only after a terminal event).
        self.obs.record_with(now.0, self.obs_tag, Some(op.0), None, || SpanEvent::Aborted {
            error: error.to_string(),
        });
        if kind == OpKind::Move && had_chunks {
            // Before the move the destination held nothing under the
            // op's pattern (the premise of moveInternal), so deleting by
            // pattern removes exactly the chunks this op streamed in.
            let ds = self.alloc_sub(op, SubRole::DelSupport);
            let dr = self.alloc_sub(op, SubRole::DelReport);
            self.track_delete(
                op,
                dst,
                ds,
                Message::DelSupportPerflow { op: ds, key: pattern },
                now,
                out,
            );
            self.track_delete(
                op,
                dst,
                dr,
                Message::DelReportPerflow { op: dr, key: pattern },
                now,
                out,
            );
        }
        if matches!(kind, OpKind::Clone | OpKind::Merge) && !shared_puts.is_empty() {
            // Compensating rollback (§4.1.3): undo the shared-state
            // merges that already landed, so the abort leaves no
            // orphaned shared state at the destination. The delete is
            // recorded in the ledger until acked: re-sent with backoff
            // if lost, and — since an MB's logic tables (and thus the
            // orphaned state) survive its crash — deferred to reattach
            // when the destination is down right now.
            let del = self.alloc_sub(op, SubRole::DelShared);
            self.track_delete(
                op,
                dst,
                del,
                Message::DeleteState { op: del, puts: shared_puts },
                now,
                out,
            );
        }
        if !self.unreachable.contains(&src) {
            for sub in get_subs {
                out.push(Action::ToMb(src, Message::EndSync { op: sub }));
            }
        }
        out.push(Action::Notify(Completion::Failed { op, error, dropped_events }));
    }

    /// Finish a completed transfer: mark it quiesced, delete moved
    /// per-flow state at the source (moves only, via the acked ledger —
    /// a lost delete must not strand the moved state at both ends), and
    /// close the sync window. `EndSync` is fire-and-forget and skipped
    /// while the source is unreachable: its loss only leaves a sync
    /// mark in the source's tracker, never state.
    fn quiesce_op(&mut self, op: OpId, now: SimTime, out: &mut Vec<Action>) {
        let Some(st) = self.ops.get_mut(&op) else { return };
        if st.quiesced {
            return;
        }
        st.quiesced = true;
        let (kind, src, pattern) = (st.kind, st.src, st.pattern);
        let get_subs = st.get_subs.clone();
        if kind == OpKind::Move {
            let ds = self.alloc_sub(op, SubRole::DelSupport);
            let dr = self.alloc_sub(op, SubRole::DelReport);
            self.track_delete(
                op,
                src,
                ds,
                Message::DelSupportPerflow { op: ds, key: pattern },
                now,
                out,
            );
            self.track_delete(
                op,
                src,
                dr,
                Message::DelReportPerflow { op: dr, key: pattern },
                now,
                out,
            );
        }
        if !self.unreachable.contains(&src) {
            for sub in get_subs {
                out.push(Action::ToMb(src, Message::EndSync { op: sub }));
            }
        }
    }

    /// Record a delete in the acked re-delivery ledger and send it now,
    /// unless `mb` is unreachable — then the entry parks (due `None`)
    /// and `mark_reachable` re-sends it on reattach. The `DeleteIssued`
    /// span marks the ledger-entry open; the invariant monitor checks
    /// it only fires after `op`'s terminal event.
    fn track_delete(
        &mut self,
        op: OpId,
        mb: MbId,
        sub: OpId,
        msg: Message,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        let down = self.unreachable.contains(&mb);
        if !down {
            out.push(Action::ToMb(mb, msg.clone()));
        }
        self.pending_deletes.push(PendingDelete {
            mb,
            sub,
            msg,
            due: if down { None } else { Some(SimTime::ZERO) },
            left: self.config.max_retries,
        });
        self.span(now, op, Some(sub), SpanEvent::DeleteIssued { mb: mb.0 });
    }

    /// Close get sub-op `sub` of `parent` once its `GetAck` has arrived
    /// *and* every announced chunk has been seen. Called from both the
    /// GetAck and Chunk handlers, so a chunk delayed past its ack still
    /// completes the stream when it finally lands.
    fn maybe_finish_get(&mut self, parent: OpId, sub: OpId, now: SimTime, out: &mut Vec<Action>) {
        let Some(st) = self.ops.get_mut(&parent) else { return };
        if st.completed || st.quiesced || st.done_gets.contains(&sub) {
            return;
        }
        let Some(&expected) = st.get_expected.get(&sub) else { return };
        let seen = st.get_seen.get(&sub).map(|s| s.len()).unwrap_or(0);
        if seen < expected as usize {
            return;
        }
        st.done_gets.insert(sub);
        st.gets_outstanding = st.gets_outstanding.saturating_sub(1);
        self.maybe_complete(parent, now, out);
    }

    /// Admit put `seq` of `op` into the transfer pipeline: issue it
    /// immediately while the in-flight ledger has a free window slot
    /// (or windowing is off), otherwise defer it to the queue for
    /// `refill_window`. Suspended ops always queue — their in-flight
    /// set is re-sent wholesale by `resume_op`.
    fn enqueue_put(&mut self, op: OpId, seq: u64, m: Message, now: SimTime, out: &mut Vec<Action>) {
        let window = self.config.transfer_window as usize;
        let mut in_flight = 0;
        let mut admitted = false;
        if let Some(st) = self.ops.get_mut(&op) {
            if !st.suspended && (window == 0 || st.unacked_puts.len() < window) {
                st.unacked_puts.insert(seq, m.clone());
                in_flight = st.unacked_puts.len();
                out.push(Action::ToMb(st.dst, m));
                admitted = true;
            } else {
                st.queued_puts.push_back((seq, m));
            }
        }
        if admitted {
            // Window-queued puts get their PutAdmitted only once
            // refill_window promotes them, so admissions mirror the
            // ledger exactly (what the I1 window invariant counts).
            self.span(now, op, None, SpanEvent::PutAdmitted { seq });
        }
        self.in_flight_peak = self.in_flight_peak.max(in_flight);
    }

    /// Promote queued puts into freed window slots and send them. Called
    /// on every ack and at the end of a resume; a no-op for terminal or
    /// suspended ops so a late ack cannot push puts past an abort.
    fn refill_window(&mut self, op: OpId, now: SimTime, out: &mut Vec<Action>) {
        let window = self.config.transfer_window as usize;
        let mut in_flight = 0;
        let mut admitted = Vec::new();
        if let Some(st) = self.ops.get_mut(&op) {
            if st.completed || st.quiesced || st.suspended {
                return;
            }
            while !st.queued_puts.is_empty() && (window == 0 || st.unacked_puts.len() < window) {
                let (seq, m) = st.queued_puts.pop_front().expect("checked non-empty");
                st.unacked_puts.insert(seq, m.clone());
                in_flight = st.unacked_puts.len();
                out.push(Action::ToMb(st.dst, m));
                admitted.push(seq);
            }
        }
        for seq in admitted {
            self.span(now, op, None, SpanEvent::PutAdmitted { seq });
        }
        self.in_flight_peak = self.in_flight_peak.max(in_flight);
    }

    /// Resume a stalled or parked transfer from its last acked chunk:
    /// re-send every get whose stream has not closed and every put not
    /// yet acked, verbatim (same sub-op ids). The re-issue is
    /// idempotent end-to-end — the source's sync tracker keeps its
    /// marks, the controller's chunk dedup drops re-streamed chunks
    /// whose put is already in flight, and the destination's put-log
    /// re-acks shared puts it already applied without re-merging. The
    /// deadline is extended so the resumed attempt gets a full window.
    fn resume_op(&mut self, op: OpId, now: SimTime, out: &mut Vec<Action>) {
        let deadline = now.after(self.config.op_deadline);
        let Some(st) = self.ops.get(&op) else { return };
        if st.completed
            || st.quiesced
            || st.deferred
            || st.resumes_left == 0
            || self.unreachable.contains(&st.src)
            || self.unreachable.contains(&st.dst)
        {
            return;
        }
        let Some(st) = self.ops.get_mut(&op) else { return };
        st.resumes_left -= 1;
        st.suspended = false;
        st.last_activity = now;
        st.deadline = deadline;
        // The window base: the ledger's first key — O(log W), not a
        // min-scan over every unacked put.
        let from_seq = st
            .unacked_puts
            .keys()
            .next()
            .copied()
            .or_else(|| st.queued_puts.front().map(|(s, _)| *s))
            .unwrap_or(st.next_chunk_seq);
        self.obs.record(now.0, self.obs_tag, Some(op.0), None, SpanEvent::Resumed { from_seq });
        let Some(st) = self.ops.get_mut(&op) else { return };
        let (src, dst) = (st.src, st.dst);
        let gets: Vec<Message> = st
            .get_reqs
            .iter()
            .filter(|(sub, _)| !st.done_gets.contains(sub))
            .map(|(_, m)| m.clone())
            .collect();
        let puts: Vec<Message> = st.unacked_puts.values().cloned().collect();
        for m in gets {
            out.push(Action::ToMb(src, m));
        }
        for m in puts {
            out.push(Action::ToMb(dst, m));
        }
        // Chunks that arrived while parked were window-deferred; top the
        // window back up now that the transfer is live again.
        self.refill_window(op, now, out);
    }

    fn maybe_complete(&mut self, parent: OpId, now: SimTime, out: &mut Vec<Action>) {
        let Some(st) = self.ops.get_mut(&parent) else { return };
        if st.completed || st.gets_outstanding > 0 || st.puts_outstanding > 0 {
            return;
        }
        st.completed = true;
        // Flush events still buffered: every put has been ACKed, so what
        // remains belongs to flows whose state never had a chunk (created
        // during the window) or whose puts completed while they waited.
        let dst = st.dst;
        for ev in std::mem::take(&mut st.buffered) {
            st.events_forwarded += 1;
            out.push(Action::ToMb(
                dst,
                Message::ReprocessPacket { op: parent, key: ev.key, packet: ev.packet },
            ));
        }
        let c = match st.kind {
            OpKind::Move => Completion::MoveComplete { op: parent, chunks_moved: st.chunks },
            OpKind::Clone => Completion::CloneComplete { op: parent },
            OpKind::Merge => Completion::MergeComplete { op: parent },
            // Simple kinds complete via their own paths.
            _ => return,
        };
        self.span(now, parent, None, SpanEvent::Completed);
        out.push(Action::Notify(c));
    }

    /// Periodic maintenance, in deterministic order (op lists are
    /// sorted — HashMap iteration order must never leak into the action
    /// stream):
    ///
    /// 1. **Retries** — resend idempotent simple requests whose backoff
    ///    expired, doubling the backoff each attempt.
    /// 2. **Stall resume** — a transfer with outstanding gets/puts and
    ///    no message activity for `resume_after` lost something in
    ///    flight; re-send the outstanding requests from the last acked
    ///    chunk (if the op has resume budget left).
    /// 3. **Deadlines** — for each op past its deadline and still
    ///    incomplete: resume it if it is a transfer with budget left and
    ///    both endpoints reachable, otherwise abort with
    ///    [`Error::Timeout`].
    /// 4. **Rollback re-delivery** — re-send owed `DeleteState`s whose
    ///    `DeleteAck` has not arrived.
    /// 5. **Quiescence** — for each completed move/clone/merge whose
    ///    event stream has been silent for `quiesce_after`, finish the
    ///    transaction: delete moved per-flow state at the source (moves
    ///    only) and close the sync window.
    pub fn tick(&mut self, now: SimTime, out: &mut Vec<Action>) {
        // 1. Retries.
        let mut due: Vec<OpId> = self
            .ops
            .iter()
            .filter(|(_, st)| {
                !st.completed && st.retry.as_ref().is_some_and(|r| r.left > 0 && now >= r.next_at)
            })
            .map(|(id, _)| *id)
            .collect();
        due.sort();
        for op in due {
            let Some(st) = self.ops.get_mut(&op) else { continue };
            let Some(r) = st.retry.as_mut() else { continue };
            r.left -= 1;
            r.backoff = r.backoff.scaled(2);
            r.next_at = now.after(r.backoff);
            let (target, resend) = (r.target, r.request.clone());
            if !self.unreachable.contains(&target) {
                out.push(Action::ToMb(target, resend));
            }
        }

        // 2. Stall resume.
        let resume_after = self.config.resume_after;
        let mut stalled: Vec<OpId> = self
            .ops
            .iter()
            .filter(|(_, st)| {
                !st.completed
                    && !st.quiesced
                    && !st.suspended
                    && st.resumes_left > 0
                    && matches!(st.kind, OpKind::Move | OpKind::Clone | OpKind::Merge)
                    && (st.gets_outstanding > 0 || st.puts_outstanding > 0)
                    && now.since(st.last_activity) >= resume_after
            })
            .map(|(id, _)| *id)
            .collect();
        stalled.sort();
        for op in stalled {
            self.resume_op(op, now, out);
        }

        // 3. Deadlines.
        let mut overdue: Vec<OpId> = self
            .ops
            .iter()
            .filter(|(_, st)| !st.completed && !st.quiesced && now >= st.deadline)
            .map(|(id, _)| *id)
            .collect();
        overdue.sort();
        for op in overdue {
            let can_resume = self.ops.get(&op).is_some_and(|st| {
                matches!(st.kind, OpKind::Move | OpKind::Clone | OpKind::Merge)
                    && st.resumes_left > 0
                    && !st.suspended
                    // A transfer still deferred at its deadline has
                    // blockers that never closed: abort, don't resume.
                    && !st.deferred
                    && !self.unreachable.contains(&st.src)
                    && !self.unreachable.contains(&st.dst)
            });
            if can_resume {
                self.resume_op(op, now, out);
            } else {
                // Includes suspended transfers whose endpoint never
                // returned: the deadline is the backstop.
                self.abort_op(op, Error::Timeout { op }, now, out);
            }
        }

        // 4. Delete re-delivery: an owed delete whose ack has not
        // arrived is re-sent with constant backoff (idempotent at the
        // MB); entries park while their MB is unreachable and are
        // dropped once the budget is spent, so a destination that never
        // acks cannot keep the maintenance timer alive forever.
        let backoff = self.config.retry_backoff;
        let mut resend: Vec<(MbId, OpId, Message)> = Vec::new();
        self.pending_deletes.retain_mut(|r| {
            let Some(due) = r.due else { return true };
            if now < due {
                return true;
            }
            if r.left == 0 {
                return false;
            }
            r.left -= 1;
            r.due = Some(now.after(backoff));
            resend.push((r.mb, r.sub, r.msg.clone()));
            true
        });
        for (mb, sub, msg) in resend {
            if !self.unreachable.contains(&mb) {
                if let Some(&(parent, _)) = self.sub_ops.get(&sub) {
                    self.span(now, parent, Some(sub), SpanEvent::DeleteRetried);
                }
                out.push(Action::ToMb(mb, msg));
            }
        }

        // 5. Quiescence.
        let quiesce = self.config.quiesce_after;
        let mut ready: Vec<OpId> = self
            .ops
            .iter()
            .filter(|(_, st)| {
                st.completed
                    && !st.quiesced
                    && matches!(st.kind, OpKind::Move | OpKind::Clone | OpKind::Merge)
                    && st.buffered.is_empty()
                    && now.since(st.last_activity) >= quiesce
            })
            .map(|(id, _)| *id)
            .collect();
        ready.sort();
        for op in ready {
            if self.ops.contains_key(&op) {
                self.quiesce_op(op, now, out);
            } else {
                // The op's state vanished between collection and
                // processing. Nothing to clean up, but the application
                // is owed a terminal completion rather than a panic.
                out.push(Action::Notify(Completion::Failed {
                    op,
                    error: Error::OpFailed("operation state lost before quiescence".into()),
                    dropped_events: 0,
                }));
            }
        }
    }

    /// Number of operations not yet quiesced, plus deletes still being
    /// actively re-delivered (testing, and the embedding's "keep the
    /// maintenance timer armed" signal). Deletes parked on an
    /// unreachable MB are excluded — they cannot progress until the
    /// reattach event, which restarts the timer itself.
    pub fn open_ops(&self) -> usize {
        self.ops
            .values()
            .filter(|st| {
                !(st.quiesced
                    || (st.completed
                        && !matches!(st.kind, OpKind::Move | OpKind::Clone | OpKind::Merge)))
            })
            .count()
            + self.pending_deletes.iter().filter(|r| r.due.is_some()).count()
    }

    /// Number of ops parked on cross-shard conflicts, awaiting release
    /// (health snapshots).
    pub fn deferred_ops(&self) -> usize {
        self.ops.values().filter(|st| st.deferred && !st.quiesced).count()
    }

    /// Has this operation fully left the shard — terminal (quiesced,
    /// aborted and released, or a completed simple request) with no
    /// delete still owed on its behalf? The shard router prunes its
    /// conflict table on this, so a flowspace stays pinned to its shard
    /// for as long as the op can still emit southbound traffic
    /// (including quiescence deletes and parked rollbacks).
    pub fn op_closed(&self, op: OpId) -> bool {
        let state_open = self.ops.get(&op).is_some_and(|st| {
            !(st.quiesced
                || (st.completed
                    && !matches!(st.kind, OpKind::Move | OpKind::Clone | OpKind::Merge)))
        });
        if state_open {
            return false;
        }
        !self
            .pending_deletes
            .iter()
            .any(|d| self.sub_ops.get(&d.sub).map(|(parent, _)| *parent) == Some(op))
    }

    /// Events forwarded under an operation (experiments).
    pub fn events_forwarded(&self, op: OpId) -> u64 {
        self.ops.get(&op).map(|s| s.events_forwarded).unwrap_or(0)
    }

    /// Total chunks transferred under an operation (experiments).
    pub fn chunks_moved(&self, op: OpId) -> usize {
        self.ops.get(&op).map(|s| s.chunks).unwrap_or(0)
    }

    /// One consistent snapshot of the transfer ledger for `op` plus the
    /// core-wide peak and cache counters. Per-op fields are zero for
    /// unknown (or already cleaned-up) ops; the core-wide fields are
    /// populated regardless, so callers that only want those may pass
    /// any op id.
    pub fn transfer_ledger_stats(&self, op: OpId) -> TransferLedgerStats {
        let (puts_in_flight, puts_queued, ack_set_size, bodies_in_flight) = self
            .ops
            .get(&op)
            .map(|s| {
                (s.unacked_puts.len(), s.queued_puts.len(), s.acked_above.len(), s.needed.len())
            })
            .unwrap_or((0, 0, 0, 0));
        TransferLedgerStats {
            puts_in_flight,
            puts_queued,
            ack_set_size,
            bodies_in_flight,
            in_flight_peak: self.in_flight_peak,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            bodies_sent: self.bodies_sent,
            bytes_saved: self.bytes_saved,
        }
    }

    /// Transfer-ledger occupancy summed over *every* op the shard still
    /// tracks (health snapshots want "how loaded is this shard now",
    /// not one op's view).
    pub fn aggregate_ledger_stats(&self) -> TransferLedgerStats {
        let mut agg = TransferLedgerStats {
            in_flight_peak: self.in_flight_peak,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            bodies_sent: self.bodies_sent,
            bytes_saved: self.bytes_saved,
            ..TransferLedgerStats::default()
        };
        for s in self.ops.values() {
            agg.puts_in_flight += s.unacked_puts.len();
            agg.puts_queued += s.queued_puts.len();
            agg.ack_set_size += s.acked_above.len();
            agg.bodies_in_flight += s.needed.len();
        }
        agg
    }
}

impl OpState {
    fn new(kind: OpKind, src: MbId, dst: MbId, now: SimTime, deadline: SimTime) -> Self {
        OpState {
            kind,
            src,
            dst,
            pattern: HeaderFieldList::any(),
            gets_outstanding: 0,
            puts_outstanding: 0,
            acked_keys: Vec::new(),
            pending_keys: HashSet::new(),
            get_subs: Vec::new(),
            buffered: Vec::new(),
            chunks: 0,
            completed: false,
            last_activity: now,
            quiesced: false,
            deadline,
            retry: None,
            events_forwarded: 0,
            next_chunk_seq: 0,
            ack_watermark: 0,
            acked_above: BTreeSet::new(),
            done_gets: HashSet::new(),
            streamed: HashSet::new(),
            get_seen: HashMap::new(),
            get_expected: HashMap::new(),
            get_reqs: Vec::new(),
            unacked_puts: BTreeMap::new(),
            queued_puts: VecDeque::new(),
            shared_puts: Vec::new(),
            resumes_left: 0,
            suspended: false,
            deferred: false,
            ref_bodies: HashMap::new(),
            needed: HashSet::new(),
        }
    }

    /// Record `seq` as acked. Returns false on a duplicate. Newly acked
    /// seqs at the watermark advance it, draining contiguous entries
    /// out of the sparse set — per-op ack state stays O(window) instead
    /// of one set entry per chunk forever.
    fn mark_acked(&mut self, seq: u64) -> bool {
        if seq < self.ack_watermark || !self.acked_above.insert(seq) {
            return false;
        }
        while self.acked_above.remove(&self.ack_watermark) {
            self.ack_watermark += 1;
        }
        true
    }
}

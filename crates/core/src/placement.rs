//! Network-aware destination placement for moves and chain moves.
//!
//! When a control application scales a chain out or rebalances it, it
//! must pick *which* standby middlebox instance receives each hop's
//! state. Stratos-style orchestration makes that choice network-aware:
//! prefer instances close to the traffic's current path (cheap state
//! transfer, low added latency) and lightly loaded (headroom for the
//! flow group being moved). [`select_destination`] scores each
//! candidate as
//!
//! ```text
//! score = topology distance (link cost)  +  load_weight × load
//! ```
//!
//! and picks the minimum, breaking ties deterministically by lowest
//! [`MbId`] — placement feeds seeded, replayable scenarios, so equal
//! candidates must never flip on iteration order. Candidates that are
//! unreachable (controller lost their control channel) or unroutable
//! (no switch path from the reference point) are never selected, no
//! matter their score.
//!
//! Load is an abstract `u64` supplied by the caller: live embeddings
//! read the per-MB `<label>.queue_depth` / `<label>.busy` gauges the
//! sim nodes publish to the [`openmb_obs::Registry`]
//! ([`gauge_load`]), tests and planners can pass anything (chunk
//! counts, flow counts).

use openmb_obs::Registry;
use openmb_openflow::Topology;
use openmb_types::{MbId, NodeId};

/// One candidate destination: a middlebox and the topology node it is
/// attached at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementCandidate {
    /// The middlebox handle (controller-side identity).
    pub mb: MbId,
    /// Where it sits in the network graph (distance is measured to
    /// this node).
    pub node: NodeId,
}

/// Pick the destination middlebox for a (chain) move hop: the
/// reachable, routable candidate minimizing
/// `distance(from, candidate) + load_weight * load(candidate)`, ties
/// broken by lowest `MbId`. Returns `None` when no candidate is both
/// reachable and routable.
///
/// `from` is the reference point the state travels from — typically
/// the current instance's attachment node.
pub fn select_destination(
    topo: &Topology,
    from: NodeId,
    candidates: &[PlacementCandidate],
    load_weight: u64,
    mut load: impl FnMut(MbId) -> u64,
    mut unreachable: impl FnMut(MbId) -> bool,
) -> Option<PlacementCandidate> {
    let mut best: Option<(u64, PlacementCandidate)> = None;
    for &c in candidates {
        if unreachable(c.mb) {
            continue;
        }
        let Some(dist) = topo.path_cost(from, c.node) else {
            continue;
        };
        let score = dist.saturating_add(load_weight.saturating_mul(load(c.mb)));
        let better = match best {
            None => true,
            Some((bs, bc)) => score < bs || (score == bs && c.mb.0 < bc.mb.0),
        };
        if better {
            best = Some((score, c));
        }
    }
    best.map(|(_, c)| c)
}

/// Read a middlebox's load from the unified metrics [`Registry`]: its
/// `<label>.queue_depth` gauge plus its `<label>.busy` gauge (an item
/// in service counts like a queued one). Missing gauges read as 0 —
/// an MB that has never enqueued work is idle, not unknown.
pub fn gauge_load(reg: &Registry, label: &str) -> u64 {
    let g = |suffix: &str| {
        reg.gauge(&format!("{label}.{suffix}")).map(|v| v.max(0.0) as u64).unwrap_or(0)
    };
    g("queue_depth") + g("busy")
}

#[cfg(test)]
mod tests {
    use super::*;
    use openmb_openflow::ElementKind;

    /// Two racks behind a spine: `from` host on rack A; candidate MBs
    /// on rack A (near) and rack B (far, +10 cost crossing the spine).
    fn two_racks() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let from = NodeId(0);
        let tor_a = NodeId(1);
        let tor_b = NodeId(2);
        let near = NodeId(3);
        let far = NodeId(4);
        t.add_element(from, ElementKind::Host);
        t.add_element(tor_a, ElementKind::Switch);
        t.add_element(tor_b, ElementKind::Switch);
        t.add_element(near, ElementKind::Middlebox);
        t.add_element(far, ElementKind::Middlebox);
        t.add_link(from, tor_a);
        t.add_link_with_cost(tor_a, tor_b, 10);
        t.add_link(tor_a, near);
        t.add_link(tor_b, far);
        (t, from, near, far)
    }

    #[test]
    fn prefers_nearby_candidate_at_equal_load() {
        let (t, from, near, far) = two_racks();
        let cands = [
            PlacementCandidate { mb: MbId(7), node: far },
            PlacementCandidate { mb: MbId(8), node: near },
        ];
        let picked = select_destination(&t, from, &cands, 1, |_| 0, |_| false).unwrap();
        assert_eq!(picked.mb, MbId(8), "closer rack must win at equal load");
    }

    #[test]
    fn load_outweighs_distance_when_weighted() {
        let (t, from, near, far) = two_racks();
        let cands = [
            PlacementCandidate { mb: MbId(1), node: near },
            PlacementCandidate { mb: MbId(2), node: far },
        ];
        // Near is 2 away, far is 12 away; near carrying 20 queued items
        // at weight 1 scores 22 > 12: rebalance crosses the rack.
        let picked = select_destination(
            &t,
            from,
            &cands,
            1,
            |mb| if mb == MbId(1) { 20 } else { 0 },
            |_| false,
        )
        .unwrap();
        assert_eq!(picked.mb, MbId(2));
    }

    #[test]
    fn equal_score_tie_breaks_on_lowest_mb_id_regardless_of_order() {
        let (t, from, near, _) = two_racks();
        // Two instances on the same node, same load: byte-identical
        // scores. The winner must be the lower MbId whichever way the
        // candidate slice is ordered (seeded replays depend on it).
        let a = PlacementCandidate { mb: MbId(5), node: near };
        let b = PlacementCandidate { mb: MbId(3), node: near };
        for cands in [[a, b], [b, a]] {
            let picked = select_destination(&t, from, &cands, 1, |_| 4, |_| false).unwrap();
            assert_eq!(picked.mb, MbId(3));
        }
    }

    #[test]
    fn never_selects_unreachable_candidate() {
        let (t, from, near, far) = two_racks();
        // The near, idle instance is the obvious winner — but it is
        // marked unreachable, so placement must take the far one.
        let cands = [
            PlacementCandidate { mb: MbId(1), node: near },
            PlacementCandidate { mb: MbId(2), node: far },
        ];
        let picked = select_destination(&t, from, &cands, 1, |_| 0, |mb| mb == MbId(1)).unwrap();
        assert_eq!(picked.mb, MbId(2));
        // And when every candidate is unreachable there is no answer.
        assert_eq!(select_destination(&t, from, &cands, 1, |_| 0, |_| true), None);
    }

    #[test]
    fn unroutable_candidate_is_skipped() {
        let (mut t, from, near, _) = two_racks();
        // An MB parked on an isolated island: registered, reachable on
        // the control plane, but no data path from `from`.
        let island = NodeId(9);
        t.add_element(island, ElementKind::Middlebox);
        let cands = [
            PlacementCandidate { mb: MbId(1), node: island },
            PlacementCandidate { mb: MbId(2), node: near },
        ];
        let picked = select_destination(&t, from, &cands, 1, |_| 0, |_| false).unwrap();
        assert_eq!(picked.mb, MbId(2));
    }

    #[test]
    fn gauge_load_reads_queue_depth_and_busy() {
        let mut reg = Registry::new();
        reg.set_gauge("fw0.queue_depth", 3.0);
        reg.set_gauge("fw0.busy", 1.0);
        assert_eq!(gauge_load(&reg, "fw0"), 4);
        // Unpublished gauges read as idle.
        assert_eq!(gauge_load(&reg, "fw1"), 0);
    }
}

//! Chain-wide atomic moves: one transaction over an ordered set of
//! per-hop transfers.
//!
//! The paper's scenarios move flows between *single* middleboxes, but
//! deployed traffic traverses MB **chains** (firewall → IPS → RE — the
//! gap Active Switching and Stratos target). Scaling or migrating a
//! chain means every MB in it must hand the flow group's state to its
//! replacement, and the hand-offs must be atomic *as a set*: a chain
//! whose firewall state moved but whose IPS state did not leaves the
//! flow group split across generations, which no routing update can
//! express.
//!
//! [`crate::controller::ControllerCore::chain_move`] runs a
//! [`ChainSpec`] as one transaction:
//!
//! * **Admission is whole-chain.** Every hop's `(flowspace, src, dst)`
//!   registers in the [`crate::router::ShardRouter`] conflict table
//!   under the chain's id before any southbound traffic is issued, and
//!   the verdict is computed over the union of hop conflict sets — so
//!   all hops pin to ONE shard's FIFO, or the chain defers until its
//!   cross-shard blockers close. Registering the whole footprint
//!   up-front (never hop-by-hop) is what makes two chains with
//!   reversed hop orders deadlock-free: there is no incremental lock
//!   acquisition to interleave.
//! * **Hops run in order.** Hop `k+1`'s per-flow move is issued only
//!   once hop `k`'s [`crate::shard::Completion::MoveComplete`] arrives.
//!   Each hop is an ordinary windowed, resumable move on the chain's
//!   shard, with all of the shard's ledgers (acked-delete, rollback,
//!   resume) intact.
//! * **Commit is all-or-nothing.** Only when the last hop completes
//!   does the chain emit [`crate::shard::Completion::ChainComplete`].
//!   If any hop fails (deadline, endpoint loss, validation), the hop
//!   itself has already rolled its own partial destination state back;
//!   the chain then *compensates* the hops that did complete by moving
//!   their state back (`dst → src`) in reverse chain order. Before a
//!   completed hop is reversed, its forward op is force-quiesced
//!   (`end_op`) and the rollback waits for the op to fully close —
//!   source-side deletes *acked* — so a late quiescence delete can
//!   never land after the reverse move re-puts the state it targets.
//!   Reverse moves are full moves — DeleteState rollback, acked-delete
//!   ledger, resume — so when the rollback finishes, every hop's
//!   middleboxes hold state byte-identical to the pre-move image (the
//!   invariant the `conformance_chain` suite replays under fault
//!   schedules).
//!   A reverse move can itself fail (its target may be the endpoint
//!   that just crashed); it is retried, paced by the maintenance tick
//!   and reachability events, up to
//!   [`crate::shard::ControllerConfig::chain_rollback_retries`] times.
//!
//! Chain ids live in their own [`CHAIN_OP_BASE`] namespace, far above
//! any shard's residue-class allocation: they never appear in
//! southbound traffic (only the per-hop ops do), so demux arithmetic
//! is untouched, and the facade can tell "chain" from "shard op" by a
//! single compare.

use openmb_types::{Error, HeaderFieldList, MbId, OpId};

/// First op id of the chain namespace. Shard residue allocation counts
/// up from 1 and could not plausibly reach this in any run; chain ids
/// count up from here. Southbound messages never carry a chain id.
pub const CHAIN_OP_BASE: u64 = 1 << 62;

/// Is `op` a chain-transaction id (vs a shard-allocated operation)?
pub fn is_chain_op(op: OpId) -> bool {
    op.0 >= CHAIN_OP_BASE
}

/// One hop of a chain move: the MB currently holding the flow group's
/// state at this position, and the MB that must hold it afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainHop {
    /// Current instance at this chain position.
    pub src: MbId,
    /// Replacement instance the state moves to.
    pub dst: MbId,
}

/// A chain-wide move request: one flow group, relocated across every
/// position of an MB chain in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSpec {
    /// The flow group every hop moves — one flowspace for the whole
    /// chain, because the chain processes one traffic aggregate.
    pub pattern: HeaderFieldList,
    /// The hops, in chain order (hop 0 is the chain's ingress MB).
    pub hops: Vec<ChainHop>,
}

impl ChainSpec {
    /// A chain over `hops` moving the flow group `pattern`.
    pub fn new(pattern: HeaderFieldList, hops: Vec<ChainHop>) -> Self {
        ChainSpec { pattern, hops }
    }

    /// The router conflict entries this chain occupies: one per hop,
    /// all carrying the chain's flowspace.
    pub(crate) fn router_entries(&self) -> Vec<(HeaderFieldList, MbId, MbId)> {
        self.hops.iter().map(|h| (self.pattern, h.src, h.dst)).collect()
    }
}

/// Where a chain transaction currently stands (diagnostics, tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainStatus {
    /// Admitted with cross-shard blockers; no hop has issued traffic.
    Deferred,
    /// Hop `.0` is in flight; hops before it have completed.
    Forward(usize),
    /// A hop failed; completed hops are being compensated in reverse
    /// order, `.0` the hop currently (or next) being undone.
    Rollback(usize),
}

/// The phase machine of one live chain.
#[derive(Debug, Clone)]
pub(crate) enum ChainPhase {
    /// Waiting for the listed cross-shard blockers to close before
    /// hop 0 may issue. (Blocker lists are snapshots taken at
    /// admission, so the wait-for graph only points at earlier
    /// admissions — acyclic, hence deadlock-free.)
    Deferred { blockers: Vec<(usize, OpId)> },
    /// Hop `hop` is running as shard operation `op`.
    Forward { hop: usize, op: OpId },
    /// Compensating. `undo` is the completed hop being reversed; `op`
    /// the reverse move in flight. `op: None` means waiting — for the
    /// forward op of `undo` to close (its quiescence deletes acked)
    /// when `paced` is false, or for a paced entry point (tick,
    /// reachability change) to retry a failed reverse when `paced` is
    /// true.
    Rollback { undo: usize, op: Option<OpId>, retries_left: u32, paced: bool },
}

/// One live chain transaction inside the facade. `Clone` so the whole
/// [`crate::controller::ControllerCore`] still journals/restores across
/// controller crashes with chain progress intact.
#[derive(Debug, Clone)]
pub(crate) struct ChainRun {
    pub id: OpId,
    pub spec: ChainSpec,
    /// The one shard every hop runs on.
    pub shard: usize,
    pub phase: ChainPhase,
    /// Chunks moved by completed forward hops (reported on commit).
    pub chunks_moved: usize,
    /// Forward op id of every hop issued so far (index = hop).
    pub hop_ops: Vec<OpId>,
    /// Reverse (compensation) ops issued, as `(hop, op)` — kept so the
    /// facade can re-register any still-draining op when the chain
    /// settles.
    pub aux_ops: Vec<(usize, OpId)>,
    /// The error that triggered the rollback, reported with the
    /// chain's terminal `Failed` completion.
    pub error: Option<Error>,
    /// Reprocess events dropped by failed/aborted hops, summed into
    /// the terminal `Failed` completion.
    pub dropped_events: usize,
}

impl ChainRun {
    /// Public phase view.
    pub fn status(&self) -> ChainStatus {
        match self.phase {
            ChainPhase::Deferred { .. } => ChainStatus::Deferred,
            ChainPhase::Forward { hop, .. } => ChainStatus::Forward(hop),
            ChainPhase::Rollback { undo, .. } => ChainStatus::Rollback(undo),
        }
    }
}

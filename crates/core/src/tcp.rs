//! The OpenMB protocol over real TCP.
//!
//! The paper's prototype connects middleboxes to the controller over
//! sockets (§7: "The controller listens for connections from MBs and,
//! for each MB, launches one thread for handling state operations and
//! one thread for handling events"). This module provides the same
//! deployment shape on `std::net` TCP with the binary wire codec:
//!
//! * [`serve_middlebox`] — serves any [`Middlebox`]'s southbound
//!   protocol over a [`Transport`] (one thread per MB, like the paper).
//! * [`TcpController`] — hosts a [`ShardedController`] (the sharded
//!   core behind per-shard locks), pumps all MB transports, and
//!   exposes *blocking* northbound calls
//!   ([`TcpController::move_internal`], ...) that wait for the matching
//!   completion.
//!
//! The discrete-event simulator remains the measurement substrate; this
//! embedding exists to demonstrate the protocol and controller logic are
//! genuinely transport-independent (and is exercised by integration
//! tests and the `tcp_protocol` example over loopback).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use openmb_mb::{Middlebox, SharedPutLog};
use openmb_obs::{Recorder, SpanEvent};
use openmb_simnet::SimTime;
use openmb_types::transport::Transport;
use openmb_types::wire::Message;
use openmb_types::{Error, MbId, OpId, Result};

use crate::controller::{Action, Completion, ControllerConfig};
use crate::parallel::ShardedController;

/// Serve a middlebox's southbound protocol over `transport` until the
/// peer disconnects or `stop` is raised. `now()` supplies timestamps for
/// packet replay.
pub fn serve_middlebox<M: Middlebox>(
    mb: &mut M,
    transport: &dyn Transport,
    stop: &AtomicBool,
) -> Result<()> {
    let mut log = SharedPutLog::new(0);
    serve_middlebox_logged(mb, &mut log, transport, stop)
}

/// [`serve_middlebox`] with a caller-owned [`SharedPutLog`], so the
/// dedup/rollback bookkeeping survives a disconnect: pass the same log
/// back in when re-serving the MB after a reconnect and a re-sent
/// shared put is re-acked instead of re-merged.
pub fn serve_middlebox_logged<M: Middlebox>(
    mb: &mut M,
    log: &mut SharedPutLog,
    transport: &dyn Transport,
    stop: &AtomicBool,
) -> Result<()> {
    let start = Instant::now();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let msg = match transport.recv_timeout(Duration::from_millis(20)) {
            Ok(Some(m)) => m,
            Ok(None) => continue,
            Err(_) => return Ok(()), // peer closed
        };
        let now = SimTime(start.elapsed().as_nanos() as u64);
        let mut replies = handle_southbound_logged(mb, log, msg, now);
        // A request with several replies (a get streaming chunks, a
        // batched request) answers with one coalesced frame.
        match replies.len() {
            0 => {}
            1 => transport.send(replies.pop().expect("len 1"))?,
            _ => transport.send(Message::Batch { msgs: replies })?,
        }
    }
}

/// [`serve_middlebox_logged`] that also records every request it
/// handles into `rec` as a [`SpanEvent::Handled`] under the node name
/// `name` — the MB half of an end-to-end op timeline. Timestamps are
/// nanoseconds since the recorder's epoch, so when the controller
/// shares the same recorder (loopback tests) both sides' events
/// interleave on one clock.
pub fn serve_middlebox_recorded<M: Middlebox>(
    mb: &mut M,
    log: &mut SharedPutLog,
    transport: &dyn Transport,
    stop: &AtomicBool,
    rec: &Recorder,
    name: &str,
) -> Result<()> {
    let tag = rec.register(name);
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let msg = match transport.recv_timeout(Duration::from_millis(20)) {
            Ok(Some(m)) => m,
            Ok(None) => continue,
            Err(_) => return Ok(()), // peer closed
        };
        let now = SimTime(rec.now_ns());
        let mut replies = handle_southbound_recorded(mb, log, msg, now, rec, tag);
        match replies.len() {
            0 => {}
            1 => transport.send(replies.pop().expect("len 1"))?,
            n => {
                rec.record(
                    now.0,
                    tag,
                    None,
                    replies[0].op_id().map(|o| o.0),
                    SpanEvent::BatchFlushed { count: n as u32 },
                );
                transport.send(Message::Batch { msgs: replies })?;
            }
        }
    }
}

/// Southbound dispatch, re-exported from [`openmb_mb::southbound`]
/// where it now lives (next to the [`Middlebox`] trait it drives).
pub use openmb_mb::southbound::{
    handle_southbound, handle_southbound_logged, handle_southbound_recorded,
};

/// A controller serving the northbound API over per-MB transports.
pub struct TcpController {
    inner: Arc<Inner>,
    pump: Option<std::thread::JoinHandle<()>>,
}

struct Inner {
    /// The sharded core behind per-shard locks: the pump thread and
    /// blocking northbound callers contend only when they touch the
    /// same shard.
    core: ShardedController,
    transports: Mutex<Vec<Arc<dyn Transport + Sync>>>,
    /// Per-MB "connection lost" flags, parallel to `transports`. Set by
    /// the pump loop on a reset/EOF; cleared by
    /// [`TcpController::reattach_mb`] when a fresh transport replaces
    /// the dead one.
    dead: Mutex<Vec<bool>>,
    completions_tx: Sender<Completion>,
    completions_rx: Receiver<Completion>,
    stop: AtomicBool,
    start: Instant,
}

impl TcpController {
    /// A controller with the given tunables; call
    /// [`register_mb`](TcpController::register_mb) then
    /// [`start`](TcpController::start).
    pub fn new(config: ControllerConfig) -> Self {
        let (tx, rx) = unbounded();
        TcpController {
            inner: Arc::new(Inner {
                core: ShardedController::new(config),
                transports: Mutex::new(Vec::new()),
                dead: Mutex::new(Vec::new()),
                completions_tx: tx,
                completions_rx: rx,
                stop: AtomicBool::new(false),
                start: Instant::now(),
            }),
            pump: None,
        }
    }

    /// Register a middlebox reachable over `transport`.
    pub fn register_mb(&self, transport: Arc<dyn Transport + Sync>) -> MbId {
        let id = self.inner.core.register_mb();
        self.inner.transports.lock().push(transport);
        self.inner.dead.lock().push(false);
        id
    }

    /// The MB reconnected: replace its dead transport, clear the
    /// unreachable mark, send any shared-state rollbacks deferred while
    /// it was down, and resume transfers parked on its account (with
    /// `max_transfer_resumes` > 0, a move interrupted mid-transfer picks
    /// up from its last acked chunk instead of starting over).
    pub fn reattach_mb(&self, mb: MbId, transport: Arc<dyn Transport + Sync>) {
        let idx = mb.0 as usize;
        {
            let mut transports = self.inner.transports.lock();
            if idx >= transports.len() {
                return;
            }
            transports[idx] = transport;
        }
        {
            let mut dead = self.inner.dead.lock();
            if idx < dead.len() {
                dead[idx] = false;
            }
        }
        self.inner.core.record(self.now().0, None, None, SpanEvent::TransportReattached);
        let actions = self.inner.core.mark_reachable(mb, self.now());
        self.inner.execute(actions);
    }

    /// Install a flight recorder on the hosted core: op lifecycle
    /// events and transport resets/reattaches record into it under the
    /// node name "controller". Timestamps are nanoseconds since the
    /// controller's start instant, so they sort against the MB side's
    /// recorder when both share one recorder over loopback.
    pub fn set_recorder(&self, rec: Recorder) {
        self.inner.core.set_recorder(rec);
    }

    /// The hosted core's flight recorder handle (disabled by default).
    pub fn recorder(&self) -> Recorder {
        self.inner.core.recorder()
    }

    /// Start the pump thread (poll transports, drive the core).
    pub fn start(&mut self) {
        let inner = Arc::clone(&self.inner);
        self.pump = Some(std::thread::spawn(move || inner.pump_loop()));
    }

    fn now(&self) -> SimTime {
        SimTime(self.inner.start.elapsed().as_nanos() as u64)
    }

    fn issue(&self, (op, actions): (OpId, Vec<Action>)) -> OpId {
        self.inner.execute(actions);
        op
    }

    /// Blocking `moveInternal`: returns once every put is ACKed.
    pub fn move_internal(
        &self,
        src: MbId,
        dst: MbId,
        key: openmb_types::HeaderFieldList,
        timeout: Duration,
    ) -> Result<Completion> {
        let op = self.issue(self.inner.core.move_internal(src, dst, key, self.now()));
        self.wait_for(op, timeout)
    }

    /// Blocking `cloneSupport`.
    pub fn clone_support(&self, src: MbId, dst: MbId, timeout: Duration) -> Result<Completion> {
        let op = self.issue(self.inner.core.clone_support(src, dst, self.now()));
        self.wait_for(op, timeout)
    }

    /// Blocking `mergeInternal`.
    pub fn merge_internal(&self, src: MbId, dst: MbId, timeout: Duration) -> Result<Completion> {
        let op = self.issue(self.inner.core.merge_internal(src, dst, self.now()));
        self.wait_for(op, timeout)
    }

    /// Blocking `readConfig`.
    pub fn read_config(&self, src: MbId, key: &str, timeout: Duration) -> Result<Completion> {
        let key = openmb_types::HierarchicalKey::parse(key);
        let op = self.issue(self.inner.core.read_config(src, key, self.now()));
        self.wait_for(op, timeout)
    }

    /// Blocking `writeConfig`.
    pub fn write_config(
        &self,
        dst: MbId,
        key: &str,
        values: Vec<openmb_types::ConfigValue>,
        timeout: Duration,
    ) -> Result<Completion> {
        let key = openmb_types::HierarchicalKey::parse(key);
        let op = self.issue(self.inner.core.write_config(dst, key, values, self.now()));
        self.wait_for(op, timeout)
    }

    /// Blocking `stats`.
    pub fn stats(
        &self,
        src: MbId,
        key: openmb_types::HeaderFieldList,
        timeout: Duration,
    ) -> Result<Completion> {
        let op = self.issue(self.inner.core.stats(src, key, self.now()));
        self.wait_for(op, timeout)
    }

    fn wait_for(&self, op: OpId, timeout: Duration) -> Result<Completion> {
        let deadline = Instant::now() + timeout;
        loop {
            let remain = deadline
                .checked_duration_since(Instant::now())
                .ok_or_else(|| Error::OpFailed(format!("timeout waiting for {op}")))?;
            match self.inner.completions_rx.recv_timeout(remain) {
                Ok(c) if c.op() == Some(op) => return Ok(c),
                Ok(_other) => continue, // completion for another op
                Err(_) => {
                    return Err(Error::OpFailed(format!("timeout waiting for {op}")));
                }
            }
        }
    }

    /// Stop the pump thread.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpController {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn execute(&self, actions: Vec<Action>) {
        // Coalesce same-destination southbound messages emitted by one
        // core call into a single Batch frame (first-occurrence
        // destination order, per-destination message order preserved).
        let mut sends: Vec<(MbId, Vec<Message>)> = Vec::new();
        let mut completions = Vec::new();
        for a in actions {
            match a {
                Action::ToMb(mb, msg) => match sends.iter_mut().find(|(m, _)| *m == mb) {
                    Some((_, v)) => v.push(msg),
                    None => sends.push((mb, vec![msg])),
                },
                Action::Notify(c) => completions.push(c),
            }
        }
        for (mb, mut msgs) in sends {
            let msg = if msgs.len() == 1 {
                msgs.pop().expect("len 1")
            } else {
                self.core.record(
                    self.start.elapsed().as_nanos() as u64,
                    None,
                    msgs[0].op_id().map(|o| o.0),
                    SpanEvent::BatchFlushed { count: msgs.len() as u32 },
                );
                Message::Batch { msgs }
            };
            let transports = self.transports.lock();
            if let Some(t) = transports.get(mb.0 as usize) {
                let _ = t.send(msg);
            }
        }
        for c in completions {
            let _ = self.completions_tx.send(c);
        }
    }

    fn pump_loop(&self) {
        let mut last_tick = Instant::now();
        // Transports whose peer has reset or closed are marked
        // unreachable once and then skipped until `reattach_mb` swaps in
        // a fresh transport and clears the flag.
        while !self.stop.load(Ordering::Relaxed) {
            let mut idle = true;
            let n = self.transports.lock().len();
            {
                let mut dead = self.dead.lock();
                if dead.len() < n {
                    dead.resize(n, false);
                }
            }
            for i in 0..n {
                if self.dead.lock()[i] {
                    continue;
                }
                let t = {
                    let ts = self.transports.lock();
                    Arc::clone(&ts[i])
                };
                loop {
                    match t.try_recv() {
                        Ok(Some(msg)) => {
                            idle = false;
                            let now = SimTime(self.start.elapsed().as_nanos() as u64);
                            let actions = self.core.handle_mb_message(MbId(i as u32), msg, now);
                            self.execute(actions);
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Connection reset or EOF: every operation
                            // touching this MB aborts with MbUnreachable
                            // (or parks, given resume budget), exactly as
                            // the sim harness reports link failures.
                            self.dead.lock()[i] = true;
                            let now = SimTime(self.start.elapsed().as_nanos() as u64);
                            self.core.record(now.0, None, None, SpanEvent::TransportReset);
                            let actions = self.core.mark_unreachable(MbId(i as u32), now);
                            self.execute(actions);
                            break;
                        }
                    }
                }
            }
            if last_tick.elapsed() > Duration::from_millis(25) {
                last_tick = Instant::now();
                let now = SimTime(self.start.elapsed().as_nanos() as u64);
                let actions = self.core.tick(now);
                self.execute(actions);
            }
            if idle {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

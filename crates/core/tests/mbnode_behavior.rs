//! Behavioral tests of the `MbNode` processing model: queueing and
//! service times, get/packet interleaving, replay side-effect
//! suppression, and off-path shared exports.

use openmb_core::nodes::{Host, MbNode};
use openmb_mb::Middlebox;
use openmb_middleboxes::{Monitor, ReDecoder};
use openmb_simnet::{Ctx, Frame, Node, Sim, SimDuration, SimTime, TraceKind};
use openmb_types::wire::Message;
use openmb_types::{FlowKey, HeaderFieldList, NodeId, OpId, Packet};
use std::net::Ipv4Addr;

/// Captures control messages the MB sends "to the controller".
#[derive(Default)]
struct CtrlProbe {
    msgs: Vec<(SimTime, Message)>,
}

impl Node for CtrlProbe {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, frame: Frame) {
        if let Frame::Control(m) = frame {
            // Mirror the real controller: a coalesced frame counts as
            // its contents.
            match m {
                Message::Batch { msgs } => {
                    self.msgs.extend(msgs.into_iter().map(|m| (ctx.now(), m)));
                }
                m => self.msgs.push((ctx.now(), m)),
            }
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn key(i: u16) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, (i % 250) as u8 + 1),
        1000 + i,
        Ipv4Addr::new(192, 168, 1, 1),
        80,
    )
}

/// ctrl(0) — mb(1) — sink(2)
fn world<M: Middlebox + 'static>(logic: M) -> (Sim, NodeId, NodeId, NodeId) {
    let mut sim = Sim::new();
    let ctrl = sim.add_node(Box::new(CtrlProbe::default()));
    let mb = sim
        .add_node(Box::new(MbNode::new("mb", logic).with_controller(ctrl).with_egress(NodeId(2))));
    let sink = sim.add_node(Box::new(Host::new("sink")));
    sim.add_link(ctrl, mb, SimDuration::from_micros(10), 0);
    sim.add_link(mb, sink, SimDuration::from_micros(10), 0);
    (sim, ctrl, mb, sink)
}

#[test]
fn packets_are_serviced_fifo_with_service_time() {
    // Monitor service time = 90 µs; 3 packets arriving together leave
    // 90 µs apart and latency grows with queue position.
    let (mut sim, _ctrl, mb, sink) = world(Monitor::new());
    for i in 0..3u64 {
        sim.inject_frame(
            SimTime(0),
            NodeId(9_999_999 % 3),
            mb,
            Frame::Data(Packet::new(i + 1, key(i as u16), vec![0u8; 10])),
        );
    }
    sim.run(10_000);
    let s: &Host = sim.node_as(sink);
    let times: Vec<u64> = s.received.iter().map(|(t, _)| t.0).collect();
    assert_eq!(times.len(), 3);
    assert_eq!(times[1] - times[0], 90_000, "one service time apart");
    assert_eq!(times[2] - times[1], 90_000);
    let lats = sim.metrics.samples("mb.pkt_latency");
    assert_eq!(lats[0].as_nanos(), 90_000);
    assert_eq!(lats[1].as_nanos(), 180_000, "queueing included in latency");
}

#[test]
fn get_streams_chunks_then_acks() {
    let mut monitor = Monitor::new();
    let mut fx = openmb_mb::Effects::normal();
    for i in 0..10u16 {
        monitor.process_packet(
            SimTime(u64::from(i)),
            &Packet::new(u64::from(i), key(i), vec![0u8; 10]),
            &mut fx,
        );
    }
    let (mut sim, ctrl, mb, _sink) = world(monitor);
    sim.inject_frame(
        SimTime(0),
        ctrl,
        mb,
        Frame::Control(Message::GetReportPerflow { op: OpId(5), key: HeaderFieldList::any() }),
    );
    sim.run(100_000);
    let probe: &CtrlProbe = sim.node_as(ctrl);
    let chunks =
        probe.msgs.iter().filter(|(_, m)| matches!(m, Message::Chunk { op: OpId(5), .. })).count();
    assert_eq!(chunks, 10);
    let last = probe.msgs.last().unwrap();
    assert!(
        matches!(last.1, Message::GetAck { op: OpId(5), count: 10 }),
        "GetAck terminates the stream: {:?}",
        last.1
    );
    // Chunks are spaced by the serialization cost (batch = 1 for prads).
    let chunk_times: Vec<u64> = probe
        .msgs
        .iter()
        .filter(|(_, m)| matches!(m, Message::Chunk { .. }))
        .map(|(t, _)| t.0)
        .collect();
    assert!(chunk_times.windows(2).all(|w| w[1] > w[0]), "streamed, not batched");
}

#[test]
fn replay_suppresses_external_side_effects() {
    // A reprocess event carries a packet; the replay must not forward it
    // to the egress, but must update state.
    let (mut sim, ctrl, mb, sink) = world(Monitor::new());
    let pkt = Packet::new(77, key(1), vec![0u8; 10]);
    sim.inject_frame(
        SimTime(0),
        ctrl,
        mb,
        Frame::Control(Message::ReprocessPacket { op: OpId(1), key: pkt.key, packet: pkt }),
    );
    sim.run(10_000);
    let s: &Host = sim.node_as(sink);
    assert!(s.received.is_empty(), "replayed packet must not be emitted");
    let node: &MbNode<Monitor> = sim.node_as(mb);
    assert_eq!(node.events_replayed, 1);
    assert_eq!(node.logic.perflow_entries(), 1, "state still updated");
    assert_eq!(node.logic.stat().total_packets, 0, "shared counters untouched by replay");
    // Replay appears in the trace as EventProcessed.
    assert!(sim.metrics.trace.iter().any(|e| matches!(e.kind, TraceKind::EventProcessed)));
}

#[test]
fn shared_export_runs_off_the_packet_path() {
    // A decoder with a 4 MiB cache: exporting takes ~290 ms of modeled
    // serialization, during which packets must keep flowing at normal
    // latency.
    let mut dec = ReDecoder::new(4 << 20);
    let mut fx = openmb_mb::Effects::normal();
    // Fill the cache so the export is heavy.
    for i in 0..(2 << 10) {
        dec.process_packet(
            SimTime(i),
            &Packet::new(i, key((i % 100) as u16), vec![0xAB; 1024]),
            &mut fx,
        );
    }
    let (mut sim, ctrl, mb, sink) = world(dec);
    sim.inject_frame(
        SimTime(0),
        ctrl,
        mb,
        Frame::Control(Message::GetSupportShared { op: OpId(9) }),
    );
    // Packets during the export window.
    for i in 0..50u64 {
        sim.inject_frame(
            SimTime(1_000_000 + i * 2_000_000),
            NodeId(0),
            mb,
            Frame::Data(Packet::new(1000 + i, key((i % 20) as u16), vec![0u8; 100])),
        );
    }
    sim.run(1_000_000);
    let probe: &CtrlProbe = sim.node_as(ctrl);
    let shared_at = probe
        .msgs
        .iter()
        .find(|(_, m)| matches!(m, Message::SharedChunk { op: OpId(9), .. }))
        .map(|(t, _)| *t)
        .expect("shared chunk exported");
    assert!(
        shared_at > SimTime(100_000_000),
        "a multi-MiB export takes its serialization time: {shared_at}"
    );
    let s: &Host = sim.node_as(sink);
    assert_eq!(s.received.len(), 50, "packets flowed during the export");
    let lats = sim.metrics.samples("mb.pkt_latency");
    let max = lats.iter().map(|d| d.as_millis_f64()).fold(0.0f64, f64::max);
    assert!(max < 2.0, "export must not block packets (max latency {max} ms)");
}

/// ctrl(0) — mb(1, batch_max=n) — sink(2)
fn world_batched<M: Middlebox + 'static>(logic: M, batch_max: usize) -> (Sim, NodeId, NodeId) {
    let mut sim = Sim::new();
    let ctrl = sim.add_node(Box::new(CtrlProbe::default()));
    let mb = sim.add_node(Box::new(
        MbNode::new("mb", logic)
            .with_controller(ctrl)
            .with_egress(NodeId(2))
            .with_batch_max(batch_max),
    ));
    let sink = sim.add_node(Box::new(Host::new("sink")));
    sim.add_link(ctrl, mb, SimDuration::from_micros(10), 0);
    sim.add_link(mb, sink, SimDuration::from_micros(10), 0);
    (sim, mb, sink)
}

#[test]
fn batched_delivery_matches_serial() {
    // The same bursty trace through batch_max 1 and batch_max 8 must
    // deliver the identical packet sequence, write identical logs, and
    // leave the middlebox in identical state — batching changes how the
    // queue drains, never what the middlebox computes.
    let run = |batch_max: usize| {
        let (mut sim, mb, sink) = world_batched(Monitor::new(), batch_max);
        let mut id = 0u64;
        for burst in 0..5u64 {
            let pkts: Vec<Packet> = (0..16)
                .map(|i| {
                    id += 1;
                    Packet::new(id, key((i % 4) as u16), vec![0u8; 20])
                })
                .collect();
            sim.inject_burst(SimTime(burst * 3_000_000), NodeId(0), mb, pkts);
        }
        sim.run(100_000_000);
        let delivered: Vec<Packet> =
            sim.node_as::<Host>(sink).received.iter().map(|(_, p)| p.clone()).collect();
        let node: &MbNode<Monitor> = sim.node_as(mb);
        let logs: Vec<_> = node.logs.clone();
        let processed = node.packets_processed;
        let entries = node.logic.perflow_entries();
        let stats = node.logic.stats(&HeaderFieldList::any());
        let latency_samples = sim.metrics.samples("mb.pkt_latency").len();
        (delivered, logs, processed, entries, stats, latency_samples)
    };
    let serial = run(1);
    let batched = run(8);
    assert_eq!(serial.0, batched.0, "delivered packet sequence must be identical");
    assert_eq!(serial.1, batched.1, "log lines must be identical");
    assert_eq!(serial.2, batched.2, "packets_processed must match");
    assert_eq!(serial.3, batched.3, "per-flow entry counts must match");
    assert_eq!(serial.4, batched.4, "state stats must match");
    assert_eq!(serial.5, batched.5, "per-packet latency samples must be per-packet");
    assert_eq!(serial.2, 80);
}

#[test]
fn batch_run_occupies_one_service_slot() {
    // A burst of 8 at batch_max 8: the first frame's arrival finds an
    // idle node (claimed alone), the remaining 7 queue behind it and
    // drain as one 7-packet slot — so the tail emerges together at
    // 1×90µs + 7×90µs, not spaced one service time apart.
    let (mut sim, mb, sink) = world_batched(Monitor::new(), 8);
    let pkts: Vec<Packet> =
        (0..8u64).map(|i| Packet::new(i + 1, key((i % 2) as u16), vec![0u8; 10])).collect();
    sim.inject_burst(SimTime(0), NodeId(0), mb, pkts);
    sim.run(10_000_000);
    let s: &Host = sim.node_as(sink);
    let times: Vec<u64> = s.received.iter().map(|(t, _)| t.0).collect();
    assert_eq!(times.len(), 8);
    assert_eq!(times[0], 90_000 + 10_000, "head of the burst serviced alone");
    for t in &times[1..] {
        assert_eq!(*t, 8 * 90_000 + 10_000, "tail drains in one combined slot");
    }
    let node: &MbNode<Monitor> = sim.node_as(mb);
    assert_eq!(node.packets_processed, 8);
    assert_eq!(sim.metrics.samples("mb.pkt_latency").len(), 8, "latency stays per-packet");
}

#[test]
fn errors_propagate_as_error_msgs() {
    let (mut sim, ctrl, mb, _sink) = world(Monitor::new());
    // Monitors keep no per-flow *supporting* state: a put is an error.
    let vendor = openmb_types::crypto::VendorKey::derive("prads");
    let chunk = openmb_types::StateChunk::new(
        HeaderFieldList::exact(key(1)),
        openmb_types::EncryptedChunk::seal(&vendor, 1, b"x"),
    );
    sim.inject_frame(
        SimTime(0),
        ctrl,
        mb,
        Frame::Control(Message::PutSupportPerflow { op: OpId(3), chunk }),
    );
    sim.run(10_000);
    let probe: &CtrlProbe = sim.node_as(ctrl);
    assert!(probe.msgs.iter().any(|(_, m)| matches!(m, Message::ErrorMsg { op: OpId(3), .. })));
}

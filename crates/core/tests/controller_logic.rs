//! Direct tests of the controller state machine: drive
//! [`ControllerCore`] against real middlebox logic through the pure
//! southbound dispatcher, no simulator in between.

use openmb_core::controller::{Action, Completion, ControllerConfig, ControllerCore};
use openmb_core::tcp::handle_southbound;
use openmb_mb::{Effects, Middlebox};
use openmb_middleboxes::{Ips, Monitor, Proxy};
use openmb_simnet::{SimDuration, SimTime};
use openmb_types::wire::Message;
use openmb_types::{FlowKey, HeaderFieldList, MbId, OpId, Packet};
use std::net::Ipv4Addr;

/// A two-MB world: actions fan out to the logic, replies feed back, until
/// the queue drains. Returns all completions.
struct World<A: Middlebox, B: Middlebox> {
    core: ControllerCore,
    a: A,
    b: B,
    a_id: MbId,
    b_id: MbId,
    now: SimTime,
    completions: Vec<Completion>,
}

impl<A: Middlebox, B: Middlebox> World<A, B> {
    fn new(a: A, b: B) -> Self {
        let mut core = ControllerCore::new(ControllerConfig {
            quiesce_after: SimDuration::from_millis(10),
            compress_transfers: false,
            buffer_events: true,
            ..ControllerConfig::default()
        });
        let a_id = core.register_mb();
        let b_id = core.register_mb();
        World { core, a, b, a_id, b_id, now: SimTime(0), completions: Vec::new() }
    }

    fn pump(&mut self, mut actions: Vec<Action>) {
        while let Some(act) = actions.pop() {
            match act {
                Action::Notify(c) => self.completions.push(c),
                Action::ToMb(mb, msg) => {
                    let replies = if mb == self.a_id {
                        handle_southbound(&mut self.a, msg, self.now)
                    } else {
                        handle_southbound(&mut self.b, msg, self.now)
                    };
                    for r in replies {
                        let mut out = Vec::new();
                        self.core.handle_mb_message(mb, r, self.now, &mut out);
                        actions.extend(out);
                    }
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    fn quiesce(&mut self) {
        self.now = self.now.after(SimDuration::from_secs(1));
        let mut out = Vec::new();
        self.core.tick(self.now, &mut out);
        self.pump(out);
    }
}

fn http_key(i: u16) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, (i % 250) as u8 + 1),
        1000 + i,
        Ipv4Addr::new(192, 168, 1, 1),
        80,
    )
}

fn seed_monitor(m: &mut Monitor, n: u16) {
    let mut fx = Effects::normal();
    for i in 0..n {
        m.process_packet(
            SimTime(u64::from(i)),
            &Packet::new(u64::from(i), http_key(i), vec![0u8; 64]),
            &mut fx,
        );
    }
}

#[test]
fn move_then_quiesce_deletes_source() {
    let mut w = World::new(Monitor::new(), Monitor::new());
    seed_monitor(&mut w.a, 20);
    let mut out = Vec::new();
    let op = w.core.move_internal(w.a_id, w.b_id, HeaderFieldList::any(), w.now, &mut out);
    w.pump(out);
    assert!(w
        .completions
        .iter()
        .any(|c| matches!(c, Completion::MoveComplete { op: o, chunks_moved: 20 } if *o == op)));
    assert_eq!(w.b.perflow_entries(), 20);
    assert_eq!(w.a.perflow_entries(), 20, "delete only after quiescence");
    w.quiesce();
    assert_eq!(w.a.perflow_entries(), 0, "quiescence deletes the source");
    assert_eq!(w.core.chunks_moved(op), 20);
}

#[test]
fn clone_with_no_shared_state_completes_cleanly() {
    // Monitors have no shared *supporting* state: the get answers OpAck
    // and the clone completes with nothing to put.
    let mut w = World::new(Monitor::new(), Monitor::new());
    let mut out = Vec::new();
    let op = w.core.clone_support(w.a_id, w.b_id, w.now, &mut out);
    w.pump(out);
    assert!(w
        .completions
        .iter()
        .any(|c| matches!(c, Completion::CloneComplete { op: o } if *o == op)));
}

#[test]
fn merge_transfers_both_shared_classes() {
    // Proxies hold shared supporting (object cache) AND shared reporting
    // (counters): mergeInternal must move both.
    let mut a = Proxy::new(32);
    let mut b = Proxy::new(32);
    let mut fx = Effects::normal();
    let req = |i: u64, url: &str| {
        Packet::new(i, http_key(i as u16), format!("GET {url} HTTP/1.1\r\n").into_bytes())
    };
    a.process_packet(SimTime(0), &req(1, "/x"), &mut fx);
    a.process_packet(SimTime(1), &req(2, "/x"), &mut fx);
    b.process_packet(SimTime(2), &req(3, "/y"), &mut fx);
    let mut w = World::new(a, b);
    let mut out = Vec::new();
    let op = w.core.merge_internal(w.a_id, w.b_id, w.now, &mut out);
    w.pump(out);
    assert!(w
        .completions
        .iter()
        .any(|c| matches!(c, Completion::MergeComplete { op: o } if *o == op)));
    // Cache union with hit metadata; counters summed.
    assert!(w.b.cache_sorted().iter().any(|o| o.url == "/x" && o.hits == 1));
    assert!(w.b.cache_sorted().iter().any(|o| o.url == "/y"));
    assert_eq!(w.b.requests, 3);
}

#[test]
fn vendor_mismatch_surfaces_as_failed_completion() {
    // Moving monitor state into an IPS: the destination cannot decrypt
    // the chunks; the put errors and the operation reports failure.
    let mut w = World::new(Monitor::new(), Ips::new());
    seed_monitor(&mut w.a, 3);
    let mut out = Vec::new();
    let op = w.core.move_internal(w.a_id, w.b_id, HeaderFieldList::any(), w.now, &mut out);
    w.pump(out);
    let failed =
        w.completions.iter().any(|c| matches!(c, Completion::Failed { op: o, .. } if *o == op));
    assert!(failed, "cross-vendor put must fail the operation: {:?}", w.completions);
}

#[test]
fn events_after_completion_are_still_forwarded() {
    let mut w = World::new(Monitor::new(), Monitor::new());
    seed_monitor(&mut w.a, 5);
    let mut out = Vec::new();
    let _op = w.core.move_internal(w.a_id, w.b_id, HeaderFieldList::any(), w.now, &mut out);
    w.pump(out);
    // Post-completion, a packet hits the source (routing not yet
    // effective): the reprocess event must reach the destination.
    let mut fx = Effects::normal();
    w.a.process_packet(SimTime(100), &Packet::new(99, http_key(1), vec![0u8; 64]), &mut fx);
    let events = fx.take_events();
    assert_eq!(events.len(), 1);
    let before = w.b.assets_sorted().iter().map(|r| r.packets).sum::<u64>();
    for ev in events {
        let mut out = Vec::new();
        w.core.handle_mb_message(w.a_id, Message::EventMsg { event: ev }, w.now, &mut out);
        w.pump(out);
    }
    let after = w.b.assets_sorted().iter().map(|r| r.packets).sum::<u64>();
    assert_eq!(after, before + 1, "replay landed at the destination");
}

#[test]
fn read_write_config_roundtrip_through_controller() {
    let mut w = World::new(Monitor::new(), Monitor::new());
    let mut out = Vec::new();
    let op = w.core.read_config(w.a_id, openmb_types::HierarchicalKey::parse("*"), w.now, &mut out);
    w.pump(out);
    let pairs = w
        .completions
        .iter()
        .find_map(|c| match c {
            Completion::Config { op: o, pairs } if *o == op => Some(pairs.clone()),
            _ => None,
        })
        .expect("config read");
    assert!(!pairs.is_empty());
    for (k, v) in pairs {
        let mut out = Vec::new();
        w.core.write_config(w.b_id, k, v, w.now, &mut out);
        w.pump(out);
    }
    assert_eq!(
        w.a.get_config(&openmb_types::HierarchicalKey::parse("*")).unwrap(),
        w.b.get_config(&openmb_types::HierarchicalKey::parse("*")).unwrap(),
    );
}

#[test]
fn stats_and_enable_events_complete() {
    let mut w = World::new(Monitor::new(), Monitor::new());
    seed_monitor(&mut w.a, 7);
    let mut out = Vec::new();
    let sop = w.core.stats(w.a_id, HeaderFieldList::any(), w.now, &mut out);
    let eop = w.core.enable_events(w.a_id, openmb_types::wire::EventFilter::all(), w.now, &mut out);
    w.pump(out);
    assert!(w.completions.iter().any(
        |c| matches!(c, Completion::Stats { op, stats } if *op == sop && stats.perflow_report_chunks == 7)
    ));
    assert!(w.completions.iter().any(|c| matches!(c, Completion::Ack { op } if *op == eop)));
    // The MB now generates introspection events.
    let mut fx = Effects::normal();
    w.a.process_packet(SimTime(50), &Packet::new(500, http_key(200), vec![0u8; 10]), &mut fx);
    let evs = fx.take_events();
    assert!(
        evs.iter().any(|e| matches!(e, openmb_types::wire::Event::Introspection { .. })),
        "introspection enabled through the controller"
    );
    // And the controller forwards them to the application.
    let mut out = Vec::new();
    for ev in evs {
        w.core.handle_mb_message(w.a_id, Message::EventMsg { event: ev }, w.now, &mut out);
    }
    w.pump(out);
    assert!(w.completions.iter().any(|c| matches!(c, Completion::MbEvent { .. })));
}

#[test]
fn duplicate_put_ack_after_completion_is_ignored() {
    // A late-retransmitted PutAck landing after the move has completed
    // (or even after quiescence deleted the op) must be dropped: no
    // panic, no duplicate completion, no resurrected transfer state.
    let mut w = World::new(Monitor::new(), Monitor::new());
    seed_monitor(&mut w.a, 8);
    let mut out = Vec::new();
    let op = w.core.move_internal(w.a_id, w.b_id, HeaderFieldList::any(), w.now, &mut out);
    // Hand-rolled pump that keeps a copy of every PutAck the destination
    // sends, so one can be replayed after the op completes.
    let mut acks: Vec<Message> = Vec::new();
    let mut actions = out;
    while let Some(act) = actions.pop() {
        match act {
            Action::Notify(c) => w.completions.push(c),
            Action::ToMb(mb, msg) => {
                let replies = if mb == w.a_id {
                    handle_southbound(&mut w.a, msg, w.now)
                } else {
                    handle_southbound(&mut w.b, msg, w.now)
                };
                for r in replies {
                    if matches!(r, Message::PutAck { .. }) {
                        acks.push(r.clone());
                    }
                    let mut o = Vec::new();
                    w.core.handle_mb_message(mb, r, w.now, &mut o);
                    actions.extend(o);
                }
            }
            other => panic!("unexpected action {other:?}"),
        }
    }
    assert!(w
        .completions
        .iter()
        .any(|c| matches!(c, Completion::MoveComplete { op: o, .. } if *o == op)));
    let n_completions = w.completions.len();
    let dst_entries = w.b.perflow_entries();
    let dup = acks.last().expect("move produced puts").clone();

    // Duplicate while the op still exists (completed, pre-quiescence).
    let mut out = Vec::new();
    w.core.handle_mb_message(w.b_id, dup.clone(), w.now, &mut out);
    w.pump(out);
    assert_eq!(w.completions.len(), n_completions, "no completion resurrected");

    // And again after quiescence has deleted the op entirely.
    w.quiesce();
    let mut out = Vec::new();
    w.core.handle_mb_message(w.b_id, dup, w.now, &mut out);
    w.pump(out);
    assert_eq!(w.completions.len(), n_completions);
    assert_eq!(w.a.perflow_entries(), 0, "quiescence delete still happened");
    assert_eq!(w.b.perflow_entries(), dst_entries);
    assert_eq!(w.core.open_ops(), 0);
}

#[test]
fn transfer_ledger_stays_bounded_by_window() {
    // With a transfer window of 4, a 120-chunk move must never have more
    // than 4 unacked puts in flight, and the watermark-compacted ack set
    // must stay within the window too — at every step, not just at the
    // end. FIFO delivery keeps acks in seq order, the common wire case.
    use std::collections::VecDeque;
    const W: u32 = 4;
    let mut w = World::new(Monitor::new(), Monitor::new());
    w.core.config.transfer_window = W;
    seed_monitor(&mut w.a, 120);
    let mut out = Vec::new();
    let op = w.core.move_internal(w.a_id, w.b_id, HeaderFieldList::any(), w.now, &mut out);
    let mut actions: VecDeque<Action> = out.into();
    while let Some(act) = actions.pop_front() {
        match act {
            Action::Notify(c) => w.completions.push(c),
            Action::ToMb(mb, msg) => {
                let replies = if mb == w.a_id {
                    handle_southbound(&mut w.a, msg, w.now)
                } else {
                    handle_southbound(&mut w.b, msg, w.now)
                };
                for r in replies {
                    let mut o = Vec::new();
                    w.core.handle_mb_message(mb, r, w.now, &mut o);
                    actions.extend(o);
                    let stats = w.core.transfer_ledger_stats(op);
                    assert!(
                        stats.puts_in_flight <= W as usize,
                        "ledger exceeded window mid-transfer: {}",
                        stats.puts_in_flight
                    );
                    assert!(
                        stats.ack_set_size <= W as usize,
                        "ack set not compacted: {}",
                        stats.ack_set_size
                    );
                }
            }
            other => panic!("unexpected action {other:?}"),
        }
    }
    assert!(w
        .completions
        .iter()
        .any(|c| matches!(c, Completion::MoveComplete { op: o, chunks_moved: 120 } if *o == op)));
    let stats = w.core.transfer_ledger_stats(op);
    assert_eq!(stats.in_flight_peak, W as usize, "window was exercised and respected");
    assert_eq!(stats.puts_in_flight, 0);
    assert_eq!(stats.puts_queued, 0);
    assert_eq!(stats.ack_set_size, 0, "all acks drained into the watermark");
    assert_eq!(stats.bodies_in_flight, 0, "every needed body was streamed and acked");
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        120,
        "every reference resolved as a hit or a miss"
    );
}

#[test]
fn end_op_skips_quiescence_wait() {
    let mut w = World::new(Monitor::new(), Monitor::new());
    seed_monitor(&mut w.a, 4);
    let mut out = Vec::new();
    let op = w.core.move_internal(w.a_id, w.b_id, HeaderFieldList::any(), w.now, &mut out);
    w.pump(out);
    assert_eq!(w.a.perflow_entries(), 4);
    let mut out = Vec::new();
    w.core.end_op(op, w.now, &mut out);
    w.pump(out);
    assert_eq!(w.a.perflow_entries(), 0, "explicit end_op deletes immediately");
    // Idempotent.
    let mut out = Vec::new();
    w.core.end_op(op, w.now, &mut out);
    assert!(out.is_empty());
    let _ = OpId(0);
}

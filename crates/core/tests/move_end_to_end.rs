//! End-to-end `moveInternal` through the full stack: traffic source →
//! switch → monitor MBs, controller orchestrating the Figure 5 sequence
//! while packets keep flowing, routing updated after completion, and the
//! atomicity properties of §4.2.1 checked on the outcome.

use std::net::Ipv4Addr;

use openmb_core::app::{Api, ControlApp};
use openmb_core::controller::{Completion, ControllerConfig};
use openmb_core::nodes::{ControllerCosts, ControllerNode, Host, MbNode};
use openmb_core::ControllerCore;
use openmb_mb::Middlebox;
use openmb_middleboxes::Monitor;
use openmb_openflow::{ElementKind, Switch, Topology};
use openmb_simnet::{Frame, Sim, SimDuration, SimTime};
use openmb_types::sdn::{FlowRule, SdnAction};
use openmb_types::{FlowKey, HeaderFieldList, MbId, NodeId, OpId, Packet};

/// Scale-up app: at T_START, move all HTTP state from mb0 to mb1 and,
/// when the move completes, redirect HTTP traffic to mb1.
struct ScaleUpApp {
    mb0: MbId,
    mb1: MbId,
    switch: NodeId,
    src_host: NodeId,
    mb0_node: NodeId,
    mb1_node: NodeId,
    dst_host: NodeId,
    move_op: Option<OpId>,
    pub move_done_at: Option<SimTime>,
}

const T_START: u64 = 1;

impl ControlApp for ScaleUpApp {
    fn on_start(&mut self, api: &mut Api<'_>) {
        api.set_timer(SimDuration::from_millis(100), T_START);
    }

    fn on_timer(&mut self, api: &mut Api<'_>, token: u64) {
        if token == T_START {
            self.move_op =
                Some(api.move_internal(self.mb0, self.mb1, HeaderFieldList::from_dst_port(80)));
        }
    }

    fn on_completion(&mut self, api: &mut Api<'_>, c: &Completion) {
        if let Completion::MoveComplete { op, .. } = c {
            if Some(*op) == self.move_op {
                self.move_done_at = Some(api.now());
                // R4: only now update routing.
                let ok = api.route(
                    HeaderFieldList::from_dst_port(80),
                    10,
                    self.src_host,
                    &[self.mb1_node],
                    self.dst_host,
                );
                assert!(ok, "route must exist");
                let _ = self.switch;
                let _ = self.mb0_node;
            }
        }
    }
}

/// Build: host_src -- switch -- host_dst, with mb0 and mb1 hanging off
/// the switch; controller linked to everything control-plane.
#[test]
fn move_between_monitors_with_live_traffic() {
    let mut sim = Sim::new();

    // Create placeholder nodes to learn ids, then wire up.
    let controller_id = NodeId(0);
    let switch_id = NodeId(1);

    let app = ScaleUpApp {
        mb0: MbId(0),
        mb1: MbId(1),
        switch: switch_id,
        src_host: NodeId(4),
        mb0_node: NodeId(2),
        mb1_node: NodeId(3),
        dst_host: NodeId(5),
        move_op: None,
        move_done_at: None,
    };
    let mut controller = ControllerNode::new(
        ControllerConfig {
            quiesce_after: SimDuration::from_millis(200),
            compress_transfers: false,
            buffer_events: true,
            ..ControllerConfig::default()
        },
        ControllerCosts::default(),
        Box::new(app),
    );
    controller.register_mb(NodeId(2));
    controller.register_mb(NodeId(3));

    let topo = &mut controller.topo;
    for (id, kind) in [
        (controller_id, ElementKind::Host),
        (switch_id, ElementKind::Switch),
        (NodeId(2), ElementKind::Middlebox),
        (NodeId(3), ElementKind::Middlebox),
        (NodeId(4), ElementKind::Host),
        (NodeId(5), ElementKind::Host),
    ] {
        topo.add_element(id, kind);
    }
    topo.add_link(switch_id, NodeId(2));
    topo.add_link(switch_id, NodeId(3));
    topo.add_link(switch_id, NodeId(4));
    topo.add_link(switch_id, NodeId(5));

    let cid = sim.add_node(Box::new(controller));
    assert_eq!(cid, controller_id);

    let mut switch = Switch::new("s1");
    // Initial routing: HTTP via mb0; everything to dst after MB.
    switch.preinstall(
        FlowRule::new(HeaderFieldList::from_dst_port(80), 5, SdnAction::Forward(NodeId(2)))
            .from_port(NodeId(4)),
    );
    switch.preinstall(FlowRule::new(HeaderFieldList::any(), 1, SdnAction::Forward(NodeId(5))));
    let sid = sim.add_node(Box::new(switch));
    assert_eq!(sid, switch_id);

    let mb0 =
        MbNode::new("mon0", Monitor::new()).with_controller(controller_id).with_egress(switch_id);
    let mb0_id = sim.add_node(Box::new(mb0));
    assert_eq!(mb0_id, NodeId(2));
    let mb1 =
        MbNode::new("mon1", Monitor::new()).with_controller(controller_id).with_egress(switch_id);
    let mb1_id = sim.add_node(Box::new(mb1));
    assert_eq!(mb1_id, NodeId(3));

    let src = sim.add_node(Box::new(Host::new("src")));
    assert_eq!(src, NodeId(4));
    let dst = sim.add_node(Box::new(Host::new("dst")));
    assert_eq!(dst, NodeId(5));

    // Data links (1 Gbps, 50 µs latency) + control links (no bw limit).
    for n in [NodeId(2), NodeId(3), NodeId(4), NodeId(5)] {
        sim.add_link(switch_id, n, SimDuration::from_micros(50), 1_000_000_000);
    }
    for n in [NodeId(1), NodeId(2), NodeId(3)] {
        sim.add_link(controller_id, n, SimDuration::from_micros(100), 1_000_000_000);
    }

    // Traffic: 40 HTTP flows, 25 packets each, 8 ms apart per flow with
    // staggered offsets — a continuous ~5 pkt/ms aggregate that spans the
    // move window (move starts at 100 ms, completes ~10 ms later).
    let mut pkt_id = 0u64;
    let mut total = 0u32;
    for f in 0..40u16 {
        let key = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, (f % 200) as u8 + 1),
            1000 + f,
            Ipv4Addr::new(192, 168, 1, 1),
            80,
        );
        for p in 0..25u64 {
            let t = SimTime((u64::from(f) * 200_000) + p * 8_000_000);
            pkt_id += 1;
            total += 1;
            sim.inject_frame(
                t,
                src,
                switch_id,
                Frame::Data(Packet::new(pkt_id, key, vec![0u8; 100])),
            );
        }
    }

    sim.run(5_000_000);
    assert!(sim.is_idle(), "simulation should drain");

    // The app observed completion and updated routing.
    let ctrl: &ControllerNode = sim.node_as(controller_id);
    let app = ctrl.completions.iter().find(|(_, c)| matches!(c, Completion::MoveComplete { .. }));
    assert!(app.is_some(), "move must complete: {:?}", ctrl.completions);

    // All packets were processed by exactly one MB (atomicity (i)+(ii)):
    // none dropped, and the union of both monitors' packet counters is
    // the injected total.
    let m0: &MbNode<Monitor> = sim.node_as(mb0_id);
    let m1: &MbNode<Monitor> = sim.node_as(mb1_id);
    assert_eq!(
        m0.packets_processed + m1.packets_processed,
        u64::from(total),
        "every packet processed exactly once"
    );
    assert!(m1.packets_processed > 0, "traffic shifted to mb1 after the move");

    // Atomicity (iii)+(iv): no per-flow observations lost. Merge both
    // monitors' views: per-flow packet counts must sum to 10 per flow.
    // mb0's copies were deleted at quiescence, so remaining records live
    // at mb1, *updated* via puts + replayed events.
    assert_eq!(m0.logic.perflow_entries(), 0, "source state deleted after quiescence");
    let total_counted: u64 = m1.logic.assets_sorted().iter().map(|r| r.packets).sum();
    assert_eq!(
        total_counted,
        u64::from(total),
        "destination accounts for every packet (replays filled the gap)"
    );

    // Events were raised and replayed (the move overlapped live traffic).
    assert!(m0.logic.events_raised() > 0, "source raised reprocess events");
    assert!(m1.events_replayed > 0, "destination replayed them");

    // Every packet reached the sink exactly once (side effects once).
    let sink: &Host = sim.node_as(dst);
    let mut ids = sink.received_ids();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u32, total, "each packet delivered exactly once");

    let _ = ControllerCore::new(ControllerConfig::default());
    let _ = Topology::new();
}

//! The OpenMB protocol over real loopback TCP: two monitor middleboxes
//! served by threads, a `TcpController` brokering a move and a shared-
//! state merge between them — the paper's deployment shape (§7) on
//! `std::net`.

use std::net::{Ipv4Addr, TcpListener};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use openmb_core::controller::{Completion, ControllerConfig};
use openmb_core::tcp::{serve_middlebox, TcpController};
use openmb_mb::{Effects, Middlebox};
use openmb_middleboxes::Monitor;
use openmb_simnet::{SimDuration, SimTime};
use openmb_types::transport::TcpTransport;
use openmb_types::{FlowKey, HeaderFieldList, Packet};

fn http_pkt(id: u64, src_last: u8) -> Packet {
    let key = FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, src_last),
        40_000 + u16::from(src_last),
        Ipv4Addr::new(192, 168, 1, 1),
        80,
    );
    Packet::new(id, key, vec![0u8; 64])
}

#[test]
fn move_and_merge_over_loopback_tcp() {
    // Two MB servers, each a listener + serving thread.
    let mut mb_ends = Vec::new();
    let mut handles = Vec::new();
    let stop = Arc::new(AtomicBool::new(false));
    for i in 0..2u8 {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let transport = TcpTransport::new(stream).unwrap();
            let mut monitor = Monitor::new();
            if i == 0 {
                // Preload the source with observed flows.
                let mut fx = Effects::normal();
                for f in 1..=30u8 {
                    monitor.process_packet(
                        SimTime(u64::from(f)),
                        &http_pkt(u64::from(f), f),
                        &mut fx,
                    );
                }
            }
            serve_middlebox(&mut monitor, &transport, &stop).unwrap();
            monitor
        });
        mb_ends.push(addr);
        handles.push(handle);
    }

    let mut controller = TcpController::new(ControllerConfig {
        quiesce_after: SimDuration::from_millis(50),
        compress_transfers: false,
        buffer_events: true,
        ..ControllerConfig::default()
    });
    let t0 = Arc::new(TcpTransport::connect(mb_ends[0]).unwrap());
    let t1 = Arc::new(TcpTransport::connect(mb_ends[1]).unwrap());
    let src = controller.register_mb(t0);
    let dst = controller.register_mb(t1);
    controller.start();

    // stats: the source reports 30 per-flow reporting chunks.
    let c = controller.stats(src, HeaderFieldList::any(), Duration::from_secs(5)).unwrap();
    match c {
        Completion::Stats { stats, .. } => assert_eq!(stats.perflow_report_chunks, 30),
        other => panic!("unexpected {other:?}"),
    }

    // readConfig("*") / writeConfig clone.
    let c = controller.read_config(src, "*", Duration::from_secs(5)).unwrap();
    let pairs = match c {
        Completion::Config { pairs, .. } => pairs,
        other => panic!("unexpected {other:?}"),
    };
    assert!(!pairs.is_empty());
    for (k, v) in &pairs {
        controller.write_config(dst, &k.to_string(), v.clone(), Duration::from_secs(5)).unwrap();
    }

    // moveInternal: all 30 chunks should land at the destination.
    let c = controller
        .move_internal(src, dst, HeaderFieldList::any(), Duration::from_secs(10))
        .unwrap();
    match c {
        Completion::MoveComplete { chunks_moved, .. } => assert_eq!(chunks_moved, 30),
        other => panic!("unexpected {other:?}"),
    }

    // mergeInternal: shared counters (30 packets) merge into dst.
    let c = controller.merge_internal(src, dst, Duration::from_secs(10)).unwrap();
    assert!(matches!(c, Completion::MergeComplete { .. }));

    // Allow the quiescence tick to fire the deletes at the source.
    std::thread::sleep(Duration::from_millis(300));
    let c = controller.stats(src, HeaderFieldList::any(), Duration::from_secs(5)).unwrap();
    match c {
        Completion::Stats { stats, .. } => {
            assert_eq!(stats.perflow_report_chunks, 0, "source deleted after quiescence")
        }
        other => panic!("unexpected {other:?}"),
    }
    let c = controller.stats(dst, HeaderFieldList::any(), Duration::from_secs(5)).unwrap();
    match c {
        Completion::Stats { stats, .. } => assert_eq!(stats.perflow_report_chunks, 30),
        other => panic!("unexpected {other:?}"),
    }

    controller.shutdown();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        let monitor = h.join().unwrap();
        // Both ends shut down cleanly; destination holds the state.
        let _ = monitor.mb_type();
    }
}

/// A destination that vanishes mid-move and reconnects resumes from the
/// last acked chunk instead of restarting or aborting, and ends with
/// exactly the state an unfaulted move produces. The MB keeps its
/// [`SharedPutLog`] across the reconnect (the process survived; only the
/// connection died), so re-sent puts are re-acked, not re-applied.
#[test]
fn mid_transfer_disconnect_resumes_from_last_acked_chunk() {
    use openmb_core::tcp::{handle_southbound_logged, serve_middlebox_logged};
    use openmb_mb::SharedPutLog;
    use openmb_types::transport::{channel_pair, Transport};
    use openmb_types::wire::Message;

    const FLOWS: u8 = 30;
    const PUTS_BEFORE_CRASH: usize = 10;

    let mut controller = TcpController::new(ControllerConfig {
        quiesce_after: SimDuration::from_millis(50),
        op_deadline: SimDuration::from_secs(30),
        max_transfer_resumes: 4,
        resume_after: SimDuration::from_millis(50),
        compress_transfers: false,
        buffer_events: true,
        // A window smaller than PUTS_BEFORE_CRASH, so the puts arrive
        // in several coalesced frames and the crash really lands
        // mid-transfer (with everything in flight at once, one Batch
        // frame would carry all 30 puts).
        transfer_window: 5,
        ..ControllerConfig::default()
    });

    // Source: a served monitor preloaded with FLOWS observed flows.
    let stop = Arc::new(AtomicBool::new(false));
    let (src_ctl, src_mb) = channel_pair();
    let src_handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut monitor = Monitor::new();
            let mut fx = Effects::normal();
            for f in 1..=FLOWS {
                monitor.process_packet(SimTime(u64::from(f)), &http_pkt(u64::from(f), f), &mut fx);
            }
            serve_middlebox(&mut monitor, &src_mb, &stop).unwrap();
        })
    };

    let (dst_ctl, dst_mb) = channel_pair();
    let src_id = controller.register_mb(Arc::new(src_ctl));
    let dst_id = controller.register_mb(Arc::new(dst_ctl));
    controller.start();

    let ctrl = &controller;
    let dst = std::thread::scope(|s| {
        let mover = s.spawn(|| {
            ctrl.move_internal(src_id, dst_id, HeaderFieldList::any(), Duration::from_secs(20))
        });

        // Destination, phase 1: apply the first PUTS_BEFORE_CRASH puts by
        // hand, acking each, then drop the transport mid-transfer.
        let mut dst = Monitor::new();
        let mut log = SharedPutLog::new(0);
        let mut puts = 0usize;
        while puts < PUTS_BEFORE_CRASH {
            let msg = match dst_mb.recv_timeout(Duration::from_millis(200)) {
                Ok(Some(m)) => m,
                Ok(None) => continue,
                Err(e) => panic!("controller hung up first: {e}"),
            };
            // Count applied puts by the acks we emit — exact whether a
            // chunk arrived as a plain put, a cache-hit reference, or a
            // streamed body, and through coalesced Batch frames.
            for reply in handle_southbound_logged(&mut dst, &mut log, msg, SimTime(0)) {
                if matches!(reply, Message::PutAck { .. }) {
                    puts += 1;
                }
                dst_mb.send(reply).unwrap();
            }
        }
        drop(dst_mb);

        // Let the pump notice the reset and park the move (resume budget
        // is non-zero, so it must not abort).
        std::thread::sleep(Duration::from_millis(200));

        // Reconnect: same MB state and put-log, fresh transport.
        let (ctl2, mb2) = channel_pair();
        ctrl.reattach_mb(dst_id, Arc::new(ctl2));
        let stop2 = Arc::clone(&stop);
        let served = s.spawn(move || {
            serve_middlebox_logged(&mut dst, &mut log, &mb2, &stop2).unwrap();
            dst
        });

        let c = mover.join().unwrap().unwrap();
        match c {
            Completion::MoveComplete { chunks_moved, .. } => {
                assert_eq!(chunks_moved, usize::from(FLOWS), "resumed move must count every chunk")
            }
            other => panic!("move did not survive the disconnect: {other:?}"),
        }

        // The destination holds exactly what an unfaulted move delivers.
        let c = ctrl.stats(dst_id, HeaderFieldList::any(), Duration::from_secs(5)).unwrap();
        match c {
            Completion::Stats { stats, .. } => {
                assert_eq!(stats.perflow_report_chunks, usize::from(FLOWS))
            }
            other => panic!("unexpected {other:?}"),
        }

        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        served.join().unwrap()
    });
    assert_eq!(dst.perflow_entries(), usize::from(FLOWS), "no chunk lost or duplicated");

    src_handle.join().unwrap();
    controller.shutdown();
}

/// The sub-op ids the controller allocates survive the wire codec.
/// Controller and both MB servers share one flight recorder over real
/// loopback TCP — length-prefixed encode/decode at both endpoints, not
/// the in-memory channel transport — so after a move, every sub-op the
/// controller recorded a `ChunkAcked` for must also appear as a
/// `Handled` event at an MB node under the SAME id.
#[test]
fn span_ids_propagate_across_the_wire() {
    use std::collections::BTreeSet;

    use openmb_core::tcp::serve_middlebox_recorded;
    use openmb_mb::SharedPutLog;
    use openmb_obs::{Recorder, SpanEvent};

    const FLOWS: u8 = 20;

    let rec = Recorder::enabled(512);
    let stop = Arc::new(AtomicBool::new(false));
    let mut mb_ends = Vec::new();
    let mut handles = Vec::new();
    for (i, name) in ["mb:src", "mb:dst"].into_iter().enumerate() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        mb_ends.push(listener.local_addr().unwrap());
        let stop = Arc::clone(&stop);
        let rec = rec.clone();
        handles.push(std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let transport = TcpTransport::new(stream).unwrap();
            let mut monitor = Monitor::new();
            if i == 0 {
                let mut fx = Effects::normal();
                for f in 1..=FLOWS {
                    monitor.process_packet(
                        SimTime(u64::from(f)),
                        &http_pkt(u64::from(f), f),
                        &mut fx,
                    );
                }
            }
            let mut log = SharedPutLog::new(0);
            serve_middlebox_recorded(&mut monitor, &mut log, &transport, &stop, &rec, name)
                .unwrap();
        }));
    }

    let mut controller = TcpController::new(ControllerConfig {
        quiesce_after: SimDuration::from_millis(50),
        compress_transfers: false,
        buffer_events: true,
        ..ControllerConfig::default()
    });
    controller.set_recorder(rec.clone());
    let src = controller.register_mb(Arc::new(TcpTransport::connect(mb_ends[0]).unwrap()));
    let dst = controller.register_mb(Arc::new(TcpTransport::connect(mb_ends[1]).unwrap()));
    controller.start();

    let c = controller
        .move_internal(src, dst, HeaderFieldList::any(), Duration::from_secs(10))
        .unwrap();
    let op = match c {
        Completion::MoveComplete { op, chunks_moved, .. } => {
            assert_eq!(chunks_moved, usize::from(FLOWS));
            op
        }
        other => panic!("unexpected {other:?}"),
    };

    controller.shutdown();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    let dump = rec.dump();

    // Controller half: per-chunk acks recorded under the parent move
    // op, each carrying the put sub-op's id.
    let acked: BTreeSet<u64> = dump
        .events
        .iter()
        .filter(|e| {
            e.node == "controller"
                && e.op == Some(op.0)
                && matches!(e.event, SpanEvent::ChunkAcked { .. })
        })
        .filter_map(|e| e.sub)
        .collect();
    assert_eq!(acked.len(), usize::from(FLOWS), "one acked put sub per chunk:\n{dump}");

    // MB half: `Handled` events keyed by the wire message's id alone —
    // the parent op never crosses the wire; the sub id is the
    // correlation key, so it must carry no parent here.
    let handled: BTreeSet<u64> = dump
        .events
        .iter()
        .filter(|e| e.node.starts_with("mb:") && matches!(e.event, SpanEvent::Handled { .. }))
        .map(|e| {
            assert_eq!(e.op, None, "MB events must not carry a parent op");
            e.sub.expect("every southbound request carries a wire id")
        })
        .collect();
    for node in ["mb:src", "mb:dst"] {
        assert!(
            dump.events
                .iter()
                .any(|e| e.node == node && matches!(e.event, SpanEvent::Handled { .. })),
            "no requests recorded at {node}:\n{dump}"
        );
    }

    // Every sub-op the controller saw acked was decoded to the same id
    // on an MB: the ids round-tripped through encode → TCP → decode.
    assert!(
        acked.is_subset(&handled),
        "sub-ops acked at the controller but never handled under the same id: {:?}\n{dump}",
        acked.difference(&handled).collect::<Vec<_>>()
    );
}

#[test]
fn dropped_connection_aborts_with_mb_unreachable() {
    use openmb_types::transport::channel_pair;
    use openmb_types::Error;

    let mut controller = TcpController::new(ControllerConfig::default());
    let (ctl_end, mb_end) = channel_pair();
    let mb = controller.register_mb(Arc::new(ctl_end));
    controller.start();

    // Sever the connection: the MB vanishes without answering. The pump
    // must feed the reset into mark_unreachable, so the blocked
    // northbound call aborts with a typed error instead of timing out.
    drop(mb_end);

    let c = controller.stats(mb, HeaderFieldList::any(), Duration::from_secs(5)).unwrap();
    match c {
        Completion::Failed { error: Error::MbUnreachable(id), .. } => assert_eq!(id, mb),
        other => panic!("expected MbUnreachable abort, got {other:?}"),
    }

    // Every subsequent call naming the dead MB fails fast the same way.
    let c =
        controller.move_internal(mb, mb, HeaderFieldList::any(), Duration::from_secs(5)).unwrap();
    assert!(matches!(c, Completion::Failed { error: Error::MbUnreachable(_), .. }));

    controller.shutdown();
}

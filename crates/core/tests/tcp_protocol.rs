//! The OpenMB protocol over real loopback TCP: two monitor middleboxes
//! served by threads, a `TcpController` brokering a move and a shared-
//! state merge between them — the paper's deployment shape (§7) on
//! `std::net`.

use std::net::{Ipv4Addr, TcpListener};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use openmb_core::controller::{Completion, ControllerConfig};
use openmb_core::tcp::{serve_middlebox, TcpController};
use openmb_mb::{Effects, Middlebox};
use openmb_middleboxes::Monitor;
use openmb_simnet::{SimDuration, SimTime};
use openmb_types::transport::TcpTransport;
use openmb_types::{FlowKey, HeaderFieldList, Packet};

fn http_pkt(id: u64, src_last: u8) -> Packet {
    let key = FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, src_last),
        40_000 + u16::from(src_last),
        Ipv4Addr::new(192, 168, 1, 1),
        80,
    );
    Packet::new(id, key, vec![0u8; 64])
}

#[test]
fn move_and_merge_over_loopback_tcp() {
    // Two MB servers, each a listener + serving thread.
    let mut mb_ends = Vec::new();
    let mut handles = Vec::new();
    let stop = Arc::new(AtomicBool::new(false));
    for i in 0..2u8 {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let transport = TcpTransport::new(stream).unwrap();
            let mut monitor = Monitor::new();
            if i == 0 {
                // Preload the source with observed flows.
                let mut fx = Effects::normal();
                for f in 1..=30u8 {
                    monitor.process_packet(
                        SimTime(u64::from(f)),
                        &http_pkt(u64::from(f), f),
                        &mut fx,
                    );
                }
            }
            serve_middlebox(&mut monitor, &transport, &stop).unwrap();
            monitor
        });
        mb_ends.push(addr);
        handles.push(handle);
    }

    let mut controller = TcpController::new(ControllerConfig {
        quiesce_after: SimDuration::from_millis(50),
        compress_transfers: false,
        buffer_events: true,
        ..ControllerConfig::default()
    });
    let t0 = Arc::new(TcpTransport::connect(mb_ends[0]).unwrap());
    let t1 = Arc::new(TcpTransport::connect(mb_ends[1]).unwrap());
    let src = controller.register_mb(t0);
    let dst = controller.register_mb(t1);
    controller.start();

    // stats: the source reports 30 per-flow reporting chunks.
    let c = controller.stats(src, HeaderFieldList::any(), Duration::from_secs(5)).unwrap();
    match c {
        Completion::Stats { stats, .. } => assert_eq!(stats.perflow_report_chunks, 30),
        other => panic!("unexpected {other:?}"),
    }

    // readConfig("*") / writeConfig clone.
    let c = controller.read_config(src, "*", Duration::from_secs(5)).unwrap();
    let pairs = match c {
        Completion::Config { pairs, .. } => pairs,
        other => panic!("unexpected {other:?}"),
    };
    assert!(!pairs.is_empty());
    for (k, v) in &pairs {
        controller.write_config(dst, &k.to_string(), v.clone(), Duration::from_secs(5)).unwrap();
    }

    // moveInternal: all 30 chunks should land at the destination.
    let c = controller
        .move_internal(src, dst, HeaderFieldList::any(), Duration::from_secs(10))
        .unwrap();
    match c {
        Completion::MoveComplete { chunks_moved, .. } => assert_eq!(chunks_moved, 30),
        other => panic!("unexpected {other:?}"),
    }

    // mergeInternal: shared counters (30 packets) merge into dst.
    let c = controller.merge_internal(src, dst, Duration::from_secs(10)).unwrap();
    assert!(matches!(c, Completion::MergeComplete { .. }));

    // Allow the quiescence tick to fire the deletes at the source.
    std::thread::sleep(Duration::from_millis(300));
    let c = controller.stats(src, HeaderFieldList::any(), Duration::from_secs(5)).unwrap();
    match c {
        Completion::Stats { stats, .. } => {
            assert_eq!(stats.perflow_report_chunks, 0, "source deleted after quiescence")
        }
        other => panic!("unexpected {other:?}"),
    }
    let c = controller.stats(dst, HeaderFieldList::any(), Duration::from_secs(5)).unwrap();
    match c {
        Completion::Stats { stats, .. } => assert_eq!(stats.perflow_report_chunks, 30),
        other => panic!("unexpected {other:?}"),
    }

    controller.shutdown();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        let monitor = h.join().unwrap();
        // Both ends shut down cleanly; destination holds the state.
        let _ = monitor.mb_type();
    }
}

#[test]
fn dropped_connection_aborts_with_mb_unreachable() {
    use openmb_types::transport::channel_pair;
    use openmb_types::Error;

    let mut controller = TcpController::new(ControllerConfig::default());
    let (ctl_end, mb_end) = channel_pair();
    let mb = controller.register_mb(Arc::new(ctl_end));
    controller.start();

    // Sever the connection: the MB vanishes without answering. The pump
    // must feed the reset into mark_unreachable, so the blocked
    // northbound call aborts with a typed error instead of timing out.
    drop(mb_end);

    let c = controller.stats(mb, HeaderFieldList::any(), Duration::from_secs(5)).unwrap();
    match c {
        Completion::Failed { error: Error::MbUnreachable(id), .. } => assert_eq!(id, mb),
        other => panic!("expected MbUnreachable abort, got {other:?}"),
    }

    // Every subsequent call naming the dead MB fails fast the same way.
    let c =
        controller.move_internal(mb, mb, HeaderFieldList::any(), Duration::from_secs(5)).unwrap();
    assert!(matches!(c, Completion::Failed { error: Error::MbUnreachable(_), .. }));

    controller.shutdown();
}

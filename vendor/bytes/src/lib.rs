//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply-cloneable byte buffer.
//! Static slices are held by reference; owned data is reference-counted,
//! so `clone()` is O(1) either way — the property packet fan-out relies on.

use std::sync::Arc;

/// Cheaply-cloneable immutable byte buffer.
#[derive(Clone)]
pub enum Bytes {
    /// Borrowed from a `'static` slice (no allocation, no refcount).
    Static(&'static [u8]),
    /// Shared owned storage.
    Shared(Arc<[u8]>),
    /// A sub-range view into shared storage. Created by [`Bytes::slice`];
    /// keeps the whole backing allocation alive but exposes only
    /// `buf[start..end]`.
    View { buf: Arc<[u8]>, start: usize, end: usize },
}

impl Bytes {
    /// Empty buffer.
    pub const fn new() -> Self {
        Bytes::Static(&[])
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes::Static(s)
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Static(s) => s,
            Bytes::Shared(a) => a,
            Bytes::View { buf, start, end } => &buf[*start..*end],
        }
    }

    /// A zero-copy view of `self[range]`: shares the backing storage
    /// (refcount bump) instead of copying the bytes.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        match self {
            Bytes::Static(s) => Bytes::Static(&s[range]),
            Bytes::Shared(a) => {
                Bytes::View { buf: Arc::clone(a), start: range.start, end: range.end }
            }
            Bytes::View { buf, start, .. } => Bytes::View {
                buf: Arc::clone(buf),
                start: start + range.start,
                end: start + range.end,
            },
        }
    }

    /// Copy out into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::Shared(v.into())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::Static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::Shared(s.into_bytes().into())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clone_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert_eq!(b, c);
    }

    #[test]
    fn static_and_owned_compare_equal() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slice_is_a_view_not_a_copy() {
        let b = Bytes::from((0u8..100).collect::<Vec<u8>>());
        let s = b.slice(10..20);
        assert_eq!(&*s, &(10u8..20).collect::<Vec<u8>>()[..]);
        // Slicing a slice re-bases into the original storage.
        let ss = s.slice(2..5);
        assert_eq!(&*ss, &[12u8, 13, 14]);
        // Static slices stay static.
        let st = Bytes::from_static(b"hello world").slice(6..11);
        assert_eq!(&*st, b"world");
        // Empty edge cases.
        assert!(b.slice(0..0).is_empty());
        assert!(b.slice(100..100).is_empty());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_rejects_out_of_bounds() {
        let _ = Bytes::from(vec![1u8, 2, 3]).slice(1..5);
    }
}

//! Offline stand-in for `crossbeam` (the `channel` module only).
//!
//! An MPMC unbounded channel built on `Mutex<VecDeque>` + `Condvar`.
//! Disconnection semantics match crossbeam-channel: a receive on an
//! empty channel whose senders are all dropped reports `Disconnected`;
//! a send with no receivers left fails with `SendError`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Send failed: all receivers dropped. Carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvError {
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.inner.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError::Disconnected);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .inner
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.inner.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { inner: self.inner.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_fires() {
            let (tx, rx) = unbounded::<u32>();
            let t0 = Instant::now();
            assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Err(RecvTimeoutError::Timeout));
            assert!(t0.elapsed() >= Duration::from_millis(15));
            drop(tx);
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}

//! Offline stand-in for `proptest`.
//!
//! A minimal deterministic property-testing harness: strategies generate
//! random values from a per-test seeded RNG (seeded from the test name,
//! so runs are reproducible), the `proptest!` macro runs each property
//! over [`NUM_CASES`] generated cases, and `prop_assert*` macros report
//! failures. No shrinking — a failing case panics with the assertion
//! message; the property bodies in this workspace include enough context
//! in their messages for that to be debuggable.
//!
//! Supported surface (what the workspace uses): `any::<T>()` for primitive
//! ints/bool, numeric range strategies (`0u8..=32`), charset-pattern
//! string strategies (`"[a-z0-9_]{1,12}"`), tuple strategies up to arity
//! 8, `Just`, `prop_map`, `prop_flat_map`, `prop_oneof!`,
//! `proptest::collection::vec`, `proptest::option::of`, `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`.

/// Number of generated cases per property.
pub const NUM_CASES: u32 = 64;

pub mod test_runner {
    /// Deterministic per-test RNG (splitmix64 seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    (lo as u128 + (rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    /// Charset-pattern string strategy: `"[a-z0-9_]{1,12}"` yields strings
    /// of 1..=12 chars drawn from the listed set. Only this simple
    /// `[set]{m,n}` shape (with `-` ranges inside the set) is supported.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (set, min, max) = parse_charset_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len).map(|_| set[rng.below(set.len() as u64) as usize]).collect()
        }
    }

    fn parse_charset_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let set_src: Vec<char> = rest[..close].chars().collect();
        let mut set = Vec::new();
        let mut i = 0;
        while i < set_src.len() {
            if i + 2 < set_src.len() && set_src[i + 1] == '-' {
                let (a, b) = (set_src[i], set_src[i + 2]);
                for c in a..=b {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(set_src[i]);
                i += 1;
            }
        }
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = match counts.split_once(',') {
            Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
            None => {
                let n = counts.parse().ok()?;
                (n, n)
            }
        };
        if set.is_empty() || min > max {
            return None;
        }
        Some((set, min, max))
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A / a);
    tuple_strategy!(A / a, B / b);
    tuple_strategy!(A / a, B / b, C / c);
    tuple_strategy!(A / a, B / b, C / c, D / d);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_from(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_from(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary_from(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_from(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `elem`, with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among the listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($(#[$_m:meta])* $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip cases that don't satisfy a precondition. With no shrinking, a
/// failed assumption just moves on to the next case via early return —
/// implemented as a plain conditional `return` from the case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over [`NUM_CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_strat = ($($strat,)+);
                let mut __pt_rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for _ in 0..$crate::NUM_CASES {
                    let ($($arg,)+) = $crate::strategy::Strategy::generate(
                        &__pt_strat,
                        &mut __pt_rng,
                    );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u8..=32, 10u32..20)) {
            prop_assert!(a <= 32);
            prop_assert!((10..20).contains(&b));
        }

        #[test]
        fn strings_match_charset(s in "[a-z0-9_]{1,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn collections_and_options(
            v in crate::collection::vec(any::<u8>(), 1..8),
            o in crate::option::of(any::<u16>()),
        ) {
            prop_assert!((1..8).contains(&v.len()));
            let _ = o;
        }

        #[test]
        fn oneof_maps_and_flat_maps(
            x in prop_oneof![Just(1u8), Just(2u8)].prop_map(|v| v * 10),
            y in (1u8..4).prop_flat_map(|n| crate::collection::vec(Just(n), 1..4)),
        ) {
            prop_assert!(x == 10 || x == 20);
            prop_assert!(!y.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = |name: &str| {
            let mut rng = crate::test_runner::TestRng::from_name(name);
            let strat = crate::collection::vec(any::<u64>(), 3..10);
            Strategy::generate(&strat, &mut rng)
        };
        assert_eq!(gen("alpha"), gen("alpha"));
        assert_ne!(gen("alpha"), gen("beta"));
    }
}

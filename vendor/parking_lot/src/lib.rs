//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's non-poisoning `lock()`
//! signature: a panic while holding the lock does not poison it (the
//! inner value is recovered), matching parking_lot semantics closely
//! enough for this workspace.

/// Non-poisoning mutex with `parking_lot`'s `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poison from a panicked holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire the lock only if it is free right now (`None` when
    /// contended), ignoring poison from a panicked holder — matching
    /// parking_lot's `try_lock() -> Option<MutexGuard>` signature.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

pub struct MutexGuard<'a, T>(std::sync::MutexGuard<'a, T>);

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_survives_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

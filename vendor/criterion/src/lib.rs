//! Offline stand-in for `criterion`.
//!
//! The real criterion crate is unavailable in this build environment, so
//! this stub keeps the bench targets compiling and runnable: each
//! benchmark body executes once and its wall time is printed. No
//! statistics, warm-up, or reports — `cargo bench` here is a smoke test,
//! not a measurement. The tier-1 gate (`cargo build && cargo test`) only
//! needs these targets to build.

use std::time::Instant;

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    MediumInput,
    LargeInput,
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub mod measurement {
    /// Marker for wall-clock measurement (the only kind supported).
    #[derive(Debug, Default)]
    pub struct WallTime;
}

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup { group: name.to_string(), _marker: std::marker::PhantomData }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", name, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    group: String,
    _marker: std::marker::PhantomData<(&'a mut Criterion, M)>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.group, name, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, f: &mut F) {
    let mut b = Bencher { _private: () };
    let t0 = Instant::now();
    f(&mut b);
    let total = t0.elapsed();
    let label = if group.is_empty() { name.to_string() } else { format!("{group}/{name}") };
    println!("bench {label}: {} ns (single pass, stub harness)", total.as_nanos());
}

pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Run the routine once, recording its wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
    }

    /// Run setup + routine once.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        std::hint::black_box(routine(input));
    }
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes harness=false bench binaries with
            // libtest-style flags; don't run full benches in that mode.
            if std::env::args().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}

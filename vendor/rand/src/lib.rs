//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the (small) subset of the rand 0.9 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `random`, `random_bool`, and `random_range`.
//!
//! Determinism is the only contract that matters here — every generator
//! in this repo is seeded, and experiments assert reproducibility, not
//! specific streams. The core is splitmix64 (public-domain algorithm by
//! Sebastiano Vigna), which passes BigCrush on its own and is more than
//! adequate for synthetic workload generation.

use std::ops::Range;

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Sample a uniformly random value of a primitive type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64_from_bits(self.next_u64()) < p
    }

    /// Uniform sample from a half-open range. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types `Rng::random` can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

/// Types uniformly sampleable from a range, mirroring
/// `rand::distr::uniform::SampleUniform`. A single blanket
/// `SampleRange` impl over this trait (rather than per-type range
/// impls) is what lets `random_range(0..5)` infer its integer type
/// from the call site, exactly like the real crate.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(u128::from(inclusive));
                let v = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + f64_from_bits(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + (f64_from_bits(rng.next_u64()) as f32) * (hi - lo)
    }
}

/// Ranges `Rng::random_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// Uniform `f64` in `[0, 1)` from 53 random bits.
fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let f = r.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.random_range(0u8..=32);
            assert!(i <= 32);
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}

//! # OpenMB — software-defined middlebox networking
//!
//! A from-scratch Rust reproduction of *Design and Implementation of a
//! Framework for Software-Defined Middlebox Networking* (Gember et al.):
//! fine-grained, programmatic control over all middlebox state, in
//! concert with SDN control over the network.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`types`] | `openmb-types` | flow keys, packets, config trees, state chunks, wire protocol, transports |
//! | [`simnet`] | `openmb-simnet` | deterministic discrete-event network simulator |
//! | [`openflow`] | `openmb-openflow` | OpenFlow-style switch, flow tables, SDN routing |
//! | [`mb`] | `openmb-mb` | the southbound (MB-facing) API: the [`mb::Middlebox`] trait |
//! | [`middleboxes`] | `openmb-middleboxes` | IPS (Bro-like), monitor (PRADS-like), RE (SmartRE-like), NAT, LB, firewall, dummy |
//! | [`core`] | `openmb-core` | the MB controller: northbound API, Fig-5 orchestration, sim + TCP embeddings |
//! | [`apps`] | `openmb-apps` | control applications (§6) and the §2.1 baselines |
//! | [`traffic`] | `openmb-traffic` | seeded workload generators standing in for the paper's traces |
//! | [`harness`] | `openmb-harness` | one experiment runner per table/figure of §8 |
//!
//! ## Quickstart
//!
//! ```
//! use openmb::mb::{Effects, Middlebox};
//! use openmb::middleboxes::Monitor;
//! use openmb::simnet::SimTime;
//! use openmb::types::{FlowKey, HeaderFieldList, OpId, Packet};
//! use std::net::Ipv4Addr;
//!
//! // Two monitor instances; traffic hits the first.
//! let mut a = Monitor::new();
//! let mut b = Monitor::new();
//! let key = FlowKey::tcp("10.0.0.1".parse().unwrap(), 1234,
//!                        "192.168.1.1".parse().unwrap(), 80);
//! let mut fx = Effects::normal();
//! a.process_packet(SimTime(0), &Packet::new(1, key, vec![0u8; 64]), &mut fx);
//!
//! // Move its per-flow state — the southbound API of §4.
//! for chunk in a.get_report_perflow(OpId(1), &HeaderFieldList::any()).unwrap() {
//!     b.put_report_perflow(chunk).unwrap();
//! }
//! assert_eq!(b.perflow_entries(), 1);
//! ```
//!
//! See `examples/` for the full scenarios (live migration, elastic
//! scaling, failure recovery, the TCP deployment) and DESIGN.md for the
//! system inventory.

pub use openmb_apps as apps;
pub use openmb_core as core;
pub use openmb_harness as harness;
pub use openmb_mb as mb;
pub use openmb_middleboxes as middleboxes;
pub use openmb_openflow as openflow;
pub use openmb_simnet as simnet;
pub use openmb_traffic as traffic;
pub use openmb_types as types;

//! Cross-crate integration tests: determinism, atomicity under load,
//! and the full stack driven through the umbrella crate.

use openmb::apps::migration::{FlowMoveApp, RouteSpec};
use openmb::apps::scenarios::{layout, two_mb_scenario, ScenarioParams};
use openmb::core::nodes::{Host, MbNode};
use openmb::mb::Middlebox;
use openmb::middleboxes::{Firewall, LoadBalancer, Monitor, Nat};
use openmb::simnet::{Frame, SimDuration, SimTime};
use openmb::traffic::CloudTraceConfig;
use openmb::types::{FlowKey, HeaderFieldList, Packet};
use std::net::Ipv4Addr;

fn run_scale_up(seed: u64) -> (u64, u64, Vec<u64>) {
    use layout::*;
    let app = FlowMoveApp::new(
        MB_A_ID,
        MB_B_ID,
        HeaderFieldList::from_dst_port(80),
        SimDuration::from_millis(300),
        RouteSpec {
            pattern: HeaderFieldList::from_dst_port(80),
            priority: 10,
            src: SRC,
            waypoints: vec![MB_B],
            dst: DST,
        },
    );
    let mut setup =
        two_mb_scenario(Monitor::new(), Monitor::new(), Box::new(app), ScenarioParams::default());
    let trace =
        CloudTraceConfig { flows: 80, seed, span: SimDuration::from_secs(1), ..Default::default() }
            .generate();
    trace.inject(&mut setup.sim, setup.src, setup.switch);
    setup.sim.run(100_000_000);
    assert!(setup.sim.is_idle());
    let a: &MbNode<Monitor> = setup.sim.node_as(setup.mb_a);
    let b: &MbNode<Monitor> = setup.sim.node_as(setup.mb_b);
    let sink: &Host = setup.sim.node_as(setup.dst);
    (a.packets_processed, b.packets_processed, sink.received_ids())
}

/// Two identical runs produce byte-identical outcomes — the simulator
/// is deterministic end to end.
#[test]
fn simulation_is_deterministic() {
    let one = run_scale_up(77);
    let two = run_scale_up(77);
    assert_eq!(one, two);
    let other = run_scale_up(78);
    assert_ne!(one.2, other.2, "different seeds differ");
}

/// A NAT and a firewall chained through the same switch: the NAT
/// translates, the firewall conntracks the translated flow, replies
/// translate back. (Exercises multiple MB types in one topology.)
#[test]
fn nat_and_firewall_compose() {
    let external = Ipv4Addr::new(5, 5, 5, 5);
    let mut nat = Nat::new(external);
    let mut fw = Firewall::new();
    let mut fx = openmb::mb::Effects::normal();

    let key = FlowKey::tcp(Ipv4Addr::new(10, 0, 0, 1), 1000, Ipv4Addr::new(8, 8, 8, 8), 80);
    nat.process_packet(SimTime(0), &Packet::new(1, key, vec![0u8; 10]), &mut fx);
    let translated = fx.take_output().unwrap();
    assert_eq!(translated.key.src_ip, external);

    fw.process_packet(SimTime(1), &translated, &mut fx);
    assert!(fx.take_output().is_some(), "firewall allows HTTP");

    // Reply path: firewall passes via conntrack, NAT translates back.
    let reply = Packet::new(2, translated.key.reversed(), vec![0u8; 10]);
    fw.process_packet(SimTime(2), &reply, &mut fx);
    let back = fx.take_output().unwrap();
    nat.process_packet(SimTime(3), &back, &mut fx);
    let delivered = fx.take_output().unwrap();
    assert_eq!(delivered.key.dst_ip, Ipv4Addr::new(10, 0, 0, 1));
    assert_eq!(delivered.key.dst_port, 1000);
}

/// Load-balancer state migrates between instances at its native
/// (source-IP) granularity through the full controller stack.
#[test]
fn lb_migration_preserves_affinity_through_sim() {
    use layout::*;
    let backends = [Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)];
    let vip = Ipv4Addr::new(1, 2, 3, 4);
    let app = FlowMoveApp::new(
        MB_A_ID,
        MB_B_ID,
        HeaderFieldList::any(),
        SimDuration::from_millis(200),
        RouteSpec {
            pattern: HeaderFieldList::any(),
            priority: 10,
            src: SRC,
            waypoints: vec![MB_B],
            dst: DST,
        },
    );
    let mut setup = two_mb_scenario(
        LoadBalancer::new(vip, &backends),
        LoadBalancer::new(vip, &backends),
        Box::new(app),
        ScenarioParams::default(),
    );
    // Each client opens one connection before the move and one after.
    for c in 0..10u8 {
        for (phase, t0) in [(0u64, 0u64), (1, 500_000_000)] {
            let key = FlowKey::tcp(
                Ipv4Addr::new(99, 0, 0, c + 1),
                1000 + u16::from(c) + (phase as u16) * 100,
                vip,
                80,
            );
            setup.sim.inject_frame(
                SimTime(t0 + u64::from(c) * 1_000_000),
                setup.src,
                setup.switch,
                Frame::Data(Packet::new(phase * 1000 + u64::from(c) + 1, key, vec![0u8; 10])),
            );
        }
    }
    setup.sim.run(100_000_000);
    assert!(setup.sim.is_idle());

    // Affinity: for each client, the backend chosen pre-move (at mb_a)
    // equals the backend used post-move (at mb_b).
    let sink: &Host = setup.sim.node_as(setup.dst);
    let mut by_client: std::collections::HashMap<Ipv4Addr, Vec<Ipv4Addr>> =
        std::collections::HashMap::new();
    for (_, p) in &sink.received {
        by_client.entry(p.key.src_ip).or_default().push(p.key.dst_ip);
    }
    assert_eq!(by_client.len(), 10);
    for (client, backends_seen) in by_client {
        assert_eq!(backends_seen.len(), 2, "both phases delivered for {client}");
        assert_eq!(
            backends_seen[0], backends_seen[1],
            "{client} must stay on its backend across the move"
        );
    }
    let b: &MbNode<LoadBalancer> = setup.sim.node_as(setup.mb_b);
    assert_eq!(b.logic.perflow_entries(), 10, "all assignments moved");
}

/// Granularity errors propagate through the controller as failures.
#[test]
fn lb_rejects_fine_grained_get_through_controller() {
    use openmb::core::controller::{Action, ControllerConfig, ControllerCore};
    use openmb::core::tcp::handle_southbound;
    let mut core = ControllerCore::new(ControllerConfig::default());
    let mb = core.register_mb();
    let mut lb = LoadBalancer::new(Ipv4Addr::new(1, 2, 3, 4), &[Ipv4Addr::new(10, 0, 0, 1)]);
    let mut actions = Vec::new();
    // Request at finer-than-native granularity (a port-qualified key).
    let op =
        core.move_internal(mb, mb, HeaderFieldList::from_dst_port(80), SimTime(0), &mut actions);
    // Deliver the southbound messages to the MB and feed replies back.
    let mut failed = false;
    for a in actions {
        if let Action::ToMb(_, msg) = a {
            for reply in handle_southbound(&mut lb, msg, SimTime(0)) {
                let mut out = Vec::new();
                core.handle_mb_message(mb, reply, SimTime(0), &mut out);
                for n in out {
                    if let Action::Notify(openmb::core::Completion::Failed {
                        op: fop, error, ..
                    }) = n
                    {
                        assert_eq!(fop, op);
                        assert!(
                            matches!(error, openmb::types::Error::GranularityTooFine { .. }),
                            "expected GranularityTooFine, got {error}"
                        );
                        failed = true;
                    }
                }
            }
        }
    }
    assert!(failed, "the granularity error must surface to the application");
}

//! Property-based tests on core data structures and invariants,
//! spanning crates.

use openmb::types::compress;
use openmb::types::crypto::{self, VendorKey};
use openmb::types::wire::{self, EventFilter, Message};
use openmb::types::{
    EncryptedChunk, FlowKey, HeaderFieldList, HierarchicalKey, IpPrefix, OpId, Packet, Proto,
    StateChunk,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_proto() -> impl Strategy<Value = Proto> {
    prop_oneof![Just(Proto::Tcp), Just(Proto::Udp), Just(Proto::Icmp)]
}

fn arb_flow_key() -> impl Strategy<Value = FlowKey> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), arb_proto()).prop_map(
        |(s, d, sp, dp, proto)| FlowKey {
            src_ip: Ipv4Addr::from(s),
            dst_ip: Ipv4Addr::from(d),
            src_port: sp,
            dst_port: dp,
            proto,
        },
    )
}

fn arb_hfl() -> impl Strategy<Value = HeaderFieldList> {
    (
        any::<u32>(),
        0u8..=32,
        any::<u32>(),
        0u8..=32,
        proptest::option::of(any::<u16>()),
        proptest::option::of(any::<u16>()),
        proptest::option::of(arb_proto()),
    )
        .prop_map(|(sa, sl, da, dl, ts, td, p)| HeaderFieldList {
            nw_src: IpPrefix::new(Ipv4Addr::from(sa), sl),
            nw_dst: IpPrefix::new(Ipv4Addr::from(da), dl),
            tp_src: ts,
            tp_dst: td,
            proto: p,
        })
}

proptest! {
    /// The wire codec roundtrips every message we can build.
    #[test]
    fn wire_roundtrip_chunks(key in arb_flow_key(), hfl in arb_hfl(), data in proptest::collection::vec(any::<u8>(), 0..512), op in any::<u64>()) {
        let vendor = VendorKey::derive("prop");
        let chunk = StateChunk::new(hfl, EncryptedChunk::seal(&vendor, op, &data));
        for msg in [
            Message::PutSupportPerflow { op: OpId(op), chunk: chunk.clone() },
            Message::Chunk { op: OpId(op), chunk },
            Message::GetSupportPerflow { op: OpId(op), key: hfl },
            Message::ReprocessPacket { op: OpId(op), key, packet: Packet::new(op, key, data.clone()) },
            Message::PutAck { op: OpId(op), key: Some(hfl) },
            Message::EnableEvents { op: OpId(op), filter: EventFilter { codes: Some(vec![1]), key: Some(hfl) } },
        ] {
            let enc = wire::encode(&msg);
            prop_assert_eq!(wire::decode(&enc).unwrap(), msg);
        }
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode(&bytes);
    }

    /// Compression roundtrips arbitrary data.
    #[test]
    fn compress_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = compress::compress(&data);
        prop_assert_eq!(compress::decompress(&c).unwrap(), data);
    }

    /// Decompressing garbage never panics.
    #[test]
    fn decompress_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = compress::decompress(&bytes);
    }

    /// Sealing roundtrips; wrong keys are always rejected.
    #[test]
    fn crypto_roundtrip_and_key_separation(data in proptest::collection::vec(any::<u8>(), 0..512), nonce in any::<u64>()) {
        let k1 = VendorKey::derive("alpha");
        let k2 = VendorKey::derive("beta");
        let ct = crypto::seal(&k1, nonce, &data);
        prop_assert_eq!(crypto::open(&k1, &ct).unwrap(), data);
        prop_assert!(crypto::open(&k2, &ct).is_none());
    }

    /// Granularity is a partial order: coarser-than is transitive through
    /// `covers`, and `matches` respects it.
    #[test]
    fn hfl_covers_implies_matches(a in arb_hfl(), b in arb_hfl(), key in arb_flow_key()) {
        if a.covers(&b) && b.matches(&key) {
            prop_assert!(a.matches(&key), "cover must match everything the covered matches");
        }
    }

    /// exact() matches its own flow and is covered by any().
    #[test]
    fn hfl_exact_laws(key in arb_flow_key()) {
        let e = HeaderFieldList::exact(key);
        prop_assert!(e.matches(&key));
        prop_assert!(HeaderFieldList::any().covers(&e));
    }

    /// Canonicalization is idempotent and direction-insensitive.
    #[test]
    fn flowkey_canonical_laws(key in arb_flow_key()) {
        let c = key.canonical();
        prop_assert_eq!(c.canonical(), c);
        prop_assert_eq!(key.reversed().canonical(), c);
    }

    /// Hierarchical keys parse/print roundtrip (for non-empty segments
    /// without '/' or '*').
    #[test]
    fn hkey_roundtrip(segs in proptest::collection::vec("[a-z0-9_]{1,12}", 1..5)) {
        let s = segs.join("/");
        let k = HierarchicalKey::parse(&s);
        prop_assert_eq!(k.to_string(), s);
    }
}

mod cache_properties {
    use super::*;
    use openmb::middleboxes::re::PacketCache;

    proptest! {
        /// Whatever was appended last (within capacity) reads back
        /// exactly; evicted ranges read as None.
        #[test]
        fn cache_reads_recent_appends(
            appends in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..300), 1..20)
        ) {
            let mut cache = PacketCache::new(1024);
            let mut offsets = Vec::new();
            for a in &appends {
                offsets.push((cache.append(a), a.clone()));
            }
            let total = cache.total();
            for (off, data) in offsets {
                let resident = off + 1024 >= total && data.len() <= 1024;
                match cache.read(off, data.len()) {
                    Some(read) if resident => prop_assert_eq!(read, data),
                    Some(_) => prop_assert!(false, "read succeeded outside window"),
                    None => prop_assert!(!resident, "resident range must read back"),
                }
            }
        }

        /// Serialization roundtrips the cache exactly.
        #[test]
        fn cache_serialize_roundtrip(
            appends in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..200), 0..10)
        ) {
            let mut cache = PacketCache::new(512);
            for a in &appends {
                cache.append(a);
            }
            let rt = PacketCache::deserialize(&cache.serialize()).unwrap();
            prop_assert_eq!(cache, rt);
        }
    }
}

mod config_properties {
    use super::*;
    use openmb::types::{ConfigTree, ConfigValue};

    proptest! {
        /// flatten → apply_flat reproduces the tree exactly.
        #[test]
        fn config_clone_is_exact(
            entries in proptest::collection::vec(
                (proptest::collection::vec("[a-z]{1,6}", 1..3), proptest::collection::vec(any::<i64>(), 0..4)),
                0..12,
            )
        ) {
            let mut src = ConfigTree::new();
            for (segs, vals) in &entries {
                let key = HierarchicalKey::parse(&segs.join("/"));
                // A segment may collide with an interior node from an
                // earlier entry; `set` overwrites, which is fine — we
                // compare against the final tree.
                src.set(&key, vals.iter().map(|v| ConfigValue::Int(*v)).collect());
            }
            let mut dst = ConfigTree::new();
            dst.apply_flat(&src.flatten());
            prop_assert_eq!(src, dst);
        }
    }
}

mod router_chain_properties {
    use super::*;
    use openmb::core::chain::CHAIN_OP_BASE;
    use openmb::core::{Admission, ShardRouter};
    use openmb::types::MbId;

    const SHARDS: usize = 4;
    const CHAIN_A: OpId = OpId(CHAIN_OP_BASE + 1);

    /// Hop `i` of every generated chain moves `MbId(2i) → MbId(2i+1)` —
    /// pairwise-disjoint MB pairs, the shape `chain_move` validates.
    fn hop_pairs(n: usize) -> Vec<(MbId, MbId)> {
        (0..n as u32).map(|i| (MbId(2 * i), MbId(2 * i + 1))).collect()
    }

    fn entries(
        pattern: &HeaderFieldList,
        hops: &[(MbId, MbId)],
    ) -> Vec<(HeaderFieldList, MbId, MbId)> {
        hops.iter().map(|&(s, d)| (*pattern, s, d)).collect()
    }

    proptest! {
        /// A registered chain's conflict footprint is the union of its
        /// hops: a later single-pair admission pins to the chain's
        /// shard iff it shares a middlebox with ANY hop and its
        /// flowspace overlaps the chain's (direction-insensitively);
        /// otherwise the hash places it unpinned. One chain sits on one
        /// shard, so a lone chain can never force a deferral.
        #[test]
        fn chain_footprint_is_union_of_hops(
            chain_pat in arb_hfl(),
            op_pat in arb_hfl(),
            hops in 2usize..=4,
            src in 0u32..12,
            dst in 0u32..12,
        ) {
            // Distinct endpoints, as `move_internal` requires.
            let dst = if src == dst { (dst + 1) % 12 } else { dst };
            let mut r = ShardRouter::new(SHARDS);
            let hp = hop_pairs(hops);
            let ent = entries(&chain_pat, &hp);
            let shard = match r.admit_chain(&ent) {
                Admission::Run { shard, pinned: false } => shard,
                adm => panic!("empty table must hash-place the chain, got {adm:?}"),
            };
            r.register_chain(CHAIN_A, &ent, shard);

            let (s, d) = (MbId(src), MbId(dst));
            let shares_mb =
                hp.iter().any(|&(hs, hd)| hs == s || hs == d || hd == s || hd == d);
            let expected = shares_mb && chain_pat.overlaps_bidi(&op_pat);
            match r.admit(&op_pat, s, d) {
                Admission::Run { shard: got, pinned: true } => {
                    prop_assert!(expected, "pinned with no hop conflict");
                    prop_assert_eq!(got, shard, "must pin to the chain's shard");
                }
                Admission::Run { pinned: false, .. } => {
                    prop_assert!(!expected, "conflicting op must serialize behind the chain");
                }
                adm @ Admission::Defer { .. } => {
                    panic!("one chain on one shard can never defer an op: {adm:?}");
                }
            }
        }

        /// Two chains over the same middleboxes with REVERSED hop
        /// orders never deadlock: the second chain's admission sees the
        /// first's whole footprint at once (registration is all-hops-
        /// before-any-traffic, never incremental), so the verdict is a
        /// strict serialization — pin behind the first, or independent
        /// hash placement — never a cyclic wait. Once the first chain
        /// closes, the reversed chain is free-placed.
        #[test]
        fn reversed_hop_orders_cannot_deadlock(
            pat_a in arb_hfl(),
            pat_b in arb_hfl(),
            hops in 2usize..=4,
        ) {
            let mut r = ShardRouter::new(SHARDS);
            let fwd = hop_pairs(hops);
            let mut rev = fwd.clone();
            rev.reverse();

            let ea = entries(&pat_a, &fwd);
            let shard = match r.admit_chain(&ea) {
                Admission::Run { shard, pinned: false } => shard,
                adm => panic!("empty table must hash-place the first chain, got {adm:?}"),
            };
            r.register_chain(CHAIN_A, &ea, shard);

            let eb = entries(&pat_b, &rev);
            let conflict = pat_a.overlaps_bidi(&pat_b);
            match r.admit_chain(&eb) {
                Admission::Run { shard: got, pinned: true } => {
                    prop_assert!(conflict, "pinned with disjoint flowspaces");
                    prop_assert_eq!(got, shard, "reversed chain must serialize behind the first");
                }
                Admission::Run { pinned: false, .. } => {
                    prop_assert!(!conflict, "overlapping reversed chain must not run free");
                }
                adm @ Admission::Defer { .. } => {
                    panic!(
                        "two chains can only wait one way — a deferral here would be \
                         the deadlock shape: {adm:?}"
                    );
                }
            }

            // The first chain closes: nothing holds the reversed chain.
            r.prune(|_, op| op == CHAIN_A);
            let adm = r.admit_chain(&eb);
            prop_assert!(
                matches!(adm, Admission::Run { pinned: false, .. }),
                "after its blocker closes the reversed chain must be free-placed: {:?}",
                adm
            );
        }
    }
}

mod controller_robustness {
    use super::*;
    use openmb::core::controller::{ControllerConfig, ControllerCore};
    use openmb::simnet::SimTime;
    use openmb::types::MbId;

    fn arb_message() -> impl Strategy<Value = Message> {
        let vendor = VendorKey::derive("prop");
        (any::<u64>(), arb_hfl(), arb_flow_key(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_flat_map(move |(op, hfl, fk, data)| {
                let chunk = StateChunk::new(hfl, EncryptedChunk::seal(&vendor, op, &data));
                let shared = EncryptedChunk::seal(&vendor, op, &data);
                prop_oneof![
                    Just(Message::Chunk { op: OpId(op), chunk: chunk.clone() }),
                    Just(Message::GetAck { op: OpId(op), count: (op % 100) as u32 }),
                    Just(Message::SharedChunk { op: OpId(op), chunk: shared }),
                    Just(Message::PutAck { op: OpId(op), key: Some(hfl) }),
                    Just(Message::PutAck { op: OpId(op), key: None }),
                    Just(Message::OpAck { op: OpId(op) }),
                    Just(Message::Stats { op: OpId(op), stats: Default::default() }),
                    Just(Message::ErrorMsg {
                        op: OpId(op),
                        error: openmb::types::Error::OpFailed("x".into()),
                    }),
                    Just(Message::EventMsg {
                        event: openmb::types::wire::Event::Reprocess {
                            op: OpId(op),
                            key: fk,
                            packet: Packet::new(op, fk, data.clone()),
                        },
                    }),
                    Just(Message::EventMsg {
                        event: openmb::types::wire::Event::Introspection {
                            code: (op % 7) as u32,
                            key: fk,
                            values: vec![],
                        },
                    }),
                ]
            })
    }

    proptest! {
        /// The controller must survive any interleaving of (possibly
        /// stale, duplicated, or unsolicited) MB messages: unknown
        /// sub-op ids are dropped, duplicate ACKs don't underflow,
        /// events for finished ops don't panic.
        #[test]
        fn controller_never_panics_on_arbitrary_messages(
            msgs in proptest::collection::vec(arb_message(), 0..60),
            issue_ops in proptest::collection::vec(any::<bool>(), 0..6),
        ) {
            let mut core = ControllerCore::new(ControllerConfig::default());
            let a = core.register_mb();
            let b = core.register_mb();
            let mut out = Vec::new();
            for (i, mv) in issue_ops.iter().enumerate() {
                if *mv {
                    core.move_internal(a, b, HeaderFieldList::any(), SimTime(i as u64), &mut out);
                } else {
                    core.clone_support(a, b, SimTime(i as u64), &mut out);
                }
            }
            for (i, m) in msgs.into_iter().enumerate() {
                core.handle_mb_message(
                    if i % 2 == 0 { a } else { b },
                    m,
                    SimTime(1000 + i as u64),
                    &mut out,
                );
            }
            core.tick(SimTime(1_000_000_000_000), &mut out);
            // Sanity: actions reference registered MBs only.
            for act in &out {
                if let openmb::core::Action::ToMb(mb, _) = act {
                    prop_assert!(mb.0 < 2, "action to unregistered {mb:?}");
                }
            }
        }
    }

    #[test]
    fn unknown_mb_messages_are_ignored() {
        let mut core = ControllerCore::new(ControllerConfig::default());
        let _ = core.register_mb();
        let mut out = Vec::new();
        core.handle_mb_message(MbId(99), Message::OpAck { op: OpId(12345) }, SimTime(0), &mut out);
        assert!(out.is_empty());
    }
}

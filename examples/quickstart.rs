//! Quickstart: the smallest end-to-end OpenMB deployment.
//!
//! One switch, two PRADS-like monitors, a controller hosting a
//! `FlowMoveApp` that shifts all HTTP flow state from instance A to
//! instance B mid-run and then updates routing (requirement R4: state
//! first, network second).
//!
//! Run with: `cargo run --example quickstart`

use openmb::apps::migration::{FlowMoveApp, RouteSpec};
use openmb::apps::scenarios::{layout, two_mb_scenario, ScenarioParams};
use openmb::core::nodes::{Host, MbNode};
use openmb::mb::Middlebox;
use openmb::middleboxes::Monitor;
use openmb::simnet::SimDuration;
use openmb::traffic::CloudTraceConfig;
use openmb::types::HeaderFieldList;

fn main() {
    use layout::*;

    // The control application: at t=400ms, moveInternal all HTTP state
    // from mb_a to mb_b; once every put is ACKed, reroute HTTP via mb_b.
    let pattern = HeaderFieldList::from_dst_port(80);
    let app = FlowMoveApp::new(
        MB_A_ID,
        MB_B_ID,
        pattern,
        SimDuration::from_millis(400),
        RouteSpec { pattern, priority: 10, src: SRC, waypoints: vec![MB_B], dst: DST },
    );

    // Topology: src -- switch -- dst, monitors hanging off the switch,
    // controller wired to the switch and both middleboxes.
    let mut setup =
        two_mb_scenario(Monitor::new(), Monitor::new(), Box::new(app), ScenarioParams::default());

    // A synthetic enterprise trace: 150 mixed HTTP/other flows.
    let trace =
        CloudTraceConfig { flows: 150, span: SimDuration::from_secs(1), ..Default::default() }
            .generate();
    let total = trace.len();
    trace.inject(&mut setup.sim, setup.src, setup.switch);

    // Run the discrete-event simulation to completion.
    setup.sim.run(100_000_000);
    assert!(setup.sim.is_idle());

    let a: &MbNode<Monitor> = setup.sim.node_as(setup.mb_a);
    let b: &MbNode<Monitor> = setup.sim.node_as(setup.mb_b);
    let sink: &Host = setup.sim.node_as(setup.dst);

    println!("injected packets:        {total}");
    println!("delivered to sink:       {}", sink.received.len());
    println!("processed at mb_a:       {}", a.packets_processed);
    println!("processed at mb_b:       {}", b.packets_processed);
    println!("reprocess events raised: {}", a.logic.events_raised());
    println!("events replayed at mb_b: {}", b.events_replayed);
    println!(
        "per-flow records:        {} at mb_a, {} at mb_b",
        a.logic.perflow_entries(),
        b.logic.perflow_entries()
    );
    let combined = a.logic.stat().total_packets + b.logic.stat().total_packets;
    println!("combined packet counter: {combined} (every packet counted exactly once)");
    assert_eq!(combined as usize, total);
    println!("\nOK: HTTP flow state moved live, no packets lost or double-counted.");
}

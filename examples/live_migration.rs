//! The §6.1 live-migration scenario: redundancy-elimination middleboxes
//! across two data centers.
//!
//! Half the application VMs move from DC A to DC B. The `ReMigrationApp`
//! runs the paper's five-step recipe: duplicate the decoder's
//! configuration, clone its packet cache, add a second cache at the
//! encoder, update routing, point the encoder's `CacheFlows` at the two
//! DCs. Every packet decodes correctly throughout — contrast with the
//! config+routing baseline printed at the end.
//!
//! Run with: `cargo run --release --example live_migration`

use openmb::apps::migration::{ReMigrationApp, RouteSpec};
use openmb::apps::scenarios::{re_layout, re_scenario, ScenarioParams};
use openmb::core::nodes::MbNode;
use openmb::middleboxes::{ReDecoder, ReEncoder};
use openmb::simnet::{SimDuration, SimTime};
use openmb::traffic::{RedundantPayloads, Trace, TraceEvent};
use openmb::types::{HeaderFieldList, IpPrefix};
use std::net::Ipv4Addr;

fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
    Ipv4Addr::new(a, b, c, d)
}

fn main() {
    use re_layout::*;
    let prefix_a = IpPrefix::new(ip(20, 0, 0, 0), 24); // DC A VMs
    let prefix_b = IpPrefix::new(ip(20, 0, 1, 0), 24); // DC B VMs (migrated)

    let app = ReMigrationApp::new(
        ENCODER_ID,
        DEC_A_ID,
        DEC_B_ID,
        SimDuration::from_millis(500),
        RouteSpec {
            pattern: HeaderFieldList::from_dst_subnet(prefix_b),
            priority: 10,
            src: SRC,
            waypoints: vec![ENCODER, DEC_B],
            dst: HOST_B,
        },
        "20.0.0.0/24",
        "20.0.1.0/24",
    );
    let mut setup = re_scenario(
        1 << 20, // 1 MiB packet caches
        prefix_a,
        prefix_b,
        Box::new(app),
        ScenarioParams::default(),
    );

    // High-redundancy traffic to both DCs: pre-migration (0–450 ms) and
    // post-migration (from 900 ms), re-referencing the same content.
    let mk = |seed: u64, start: u64, dst: Ipv4Addr, src_last: u8| {
        RedundantPayloads { seed, redundancy: 0.7, ..Default::default() }.generate(
            300,
            SimTime(start),
            SimDuration::from_micros(1500),
            ip(10, 9, 9, src_last),
            dst,
            1,
        )
    };
    let t = mk(11, 0, ip(20, 0, 0, 10), 9)
        .merge(&mk(12, 750_000, ip(20, 0, 1, 10), 8))
        .merge(&mk(11, 900_000_000, ip(20, 0, 0, 10), 9))
        .merge(&mk(12, 900_750_000, ip(20, 0, 1, 10), 8));
    let trace = Trace::new(
        t.events()
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let mut p = e.packet.clone();
                p.id = i as u64 + 1;
                TraceEvent { time: e.time, packet: p }
            })
            .collect(),
    );
    trace.inject(&mut setup.sim, setup.src, setup.switch);

    setup.sim.run(500_000_000);
    assert!(setup.sim.is_idle());

    let enc: &MbNode<ReEncoder> = setup.sim.node_as(setup.encoder);
    let da: &MbNode<ReDecoder> = setup.sim.node_as(setup.dec_a);
    let db: &MbNode<ReDecoder> = setup.sim.node_as(setup.dec_b);

    println!("== OpenMB live migration of an RE deployment ==");
    println!("bytes saved by encoding:        {}", enc.logic.bytes_saved);
    println!("packets decoded at DC A:        {}", da.logic.packets_decoded);
    println!("packets decoded at DC B:        {}", db.logic.packets_decoded);
    println!("undecodable at DC A:            {}", da.logic.packets_undecodable);
    println!("undecodable at DC B:            {}", db.logic.packets_undecodable);
    assert_eq!(da.logic.packets_undecodable + db.logic.packets_undecodable, 0);
    println!("\nOK: the cloned cache kept encoder and new decoder in sync —");
    println!("every packet decoded (paper Table 3, SDMBN row).");
    println!("\nFor the config+routing baseline (all post-switch traffic");
    println!("undecodable), run: cargo run --release -p openmb-harness --bin repro -- table3");
}

//! The §2 failure-recovery scenario (requirement R6): introspection
//! events keep a minimal live snapshot of a NAT's critical state, which
//! restores instantly onto a standby when the primary fails.
//!
//! The `NatFailoverApp` subscribes (with a §4.2.2 code filter) to
//! mapping-created/expired events, mirrors the address/port mappings at
//! the controller, and — on the failure trigger — writes them onto the
//! standby as static mappings, then reroutes. In-progress connections
//! keep their external ports; non-critical state (timeouts, counters)
//! restarts at defaults.
//!
//! Run with: `cargo run --example failure_recovery`

use openmb::apps::failover::NatFailoverApp;
use openmb::apps::migration::RouteSpec;
use openmb::apps::scenarios::{layout, two_mb_scenario, ScenarioParams};
use openmb::core::nodes::{ControllerNode, Host, MbNode};
use openmb::mb::Middlebox;
use openmb::middleboxes::Nat;
use openmb::simnet::{Frame, SimDuration, SimTime};
use openmb::types::{FlowKey, HeaderFieldList, Packet};
use std::net::Ipv4Addr;

fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
    Ipv4Addr::new(a, b, c, d)
}

fn main() {
    use layout::*;
    let external = ip(5, 5, 5, 5);
    let app = NatFailoverApp::new(
        MB_A_ID,
        MB_B_ID,
        SimDuration::from_millis(500), // primary "fails" here
        RouteSpec {
            pattern: HeaderFieldList::any(),
            priority: 10,
            src: SRC,
            waypoints: vec![MB_B],
            dst: DST,
        },
    );
    let mut setup = two_mb_scenario(
        Nat::new(external),
        Nat::new(external),
        Box::new(app),
        ScenarioParams::default(),
    );

    // 20 outbound connections through the primary NAT before the failure.
    for i in 0..20u16 {
        let key = FlowKey::tcp(ip(10, 0, 0, (i % 200) as u8 + 1), 1000 + i, ip(8, 8, 8, 8), 80);
        // Offset past the EnableEvents round trip so every mapping's
        // creation event is observed.
        setup.sim.inject_frame(
            SimTime(5_000_000 + u64::from(i) * 10_000_000),
            setup.src,
            setup.switch,
            Frame::Data(Packet::new(u64::from(i) + 1, key, vec![0u8; 64])),
        );
    }
    // After the failover (t > 600ms), the same internal flows send again
    // — through the standby.
    for i in 0..20u16 {
        let key = FlowKey::tcp(ip(10, 0, 0, (i % 200) as u8 + 1), 1000 + i, ip(8, 8, 8, 8), 80);
        setup.sim.inject_frame(
            SimTime(700_000_000 + u64::from(i) * 10_000_000),
            setup.src,
            setup.switch,
            Frame::Data(Packet::new(1000 + u64::from(i), key, vec![0u8; 64])),
        );
    }
    setup.sim.run(100_000_000);
    assert!(setup.sim.is_idle());

    let primary: &MbNode<Nat> = setup.sim.node_as(setup.mb_a);
    let standby: &MbNode<Nat> = setup.sim.node_as(setup.mb_b);
    let sink: &Host = setup.sim.node_as(setup.dst);
    let ctrl: &ControllerNode = setup.sim.node_as(setup.controller);
    let events = ctrl
        .completions
        .iter()
        .filter(|(_, c)| matches!(c, openmb::core::Completion::MbEvent { .. }))
        .count();

    println!("introspection events observed by the app: {events}");
    println!("mappings at failed primary:  {}", primary.logic.perflow_entries());
    println!("mappings restored at standby: {}", standby.logic.perflow_entries());
    assert_eq!(standby.logic.perflow_entries(), 20);

    // Port stability: the standby translates each flow to the SAME
    // external port the primary assigned — in-progress connections
    // survive the failover.
    let pre: Vec<u16> = primary.logic.mappings_sorted().iter().map(|m| m.external_port).collect();
    let post: Vec<u16> = standby.logic.mappings_sorted().iter().map(|m| m.external_port).collect();
    assert_eq!(pre, post, "external ports preserved across failover");
    println!("external ports preserved:    {pre:?} == {post:?}");
    println!("packets delivered:           {}", sink.received.len());
    println!("\nOK: critical NAT state survived the failure via introspection (R6);");
    println!("no parallel replica, no full-state snapshots.");
}

//! The §6.2 elastic-scaling scenario: PRADS-like monitors scale up, then
//! back down, with no over- or under-reporting.
//!
//! Scale up: clone configuration, query `stats` for the rebalancing
//! decision, `moveInternal` a subnet's flows, reroute them.
//! Scale down: move everything back, reroute, then `mergeInternal` the
//! shared counters into the survivor.
//!
//! Run with: `cargo run --example elastic_scaling`

use openmb::apps::migration::RouteSpec;
use openmb::apps::scaling::{ScaleDownApp, ScaleUpApp};
use openmb::apps::scenarios::{layout, two_mb_scenario, ScenarioParams};
use openmb::core::nodes::MbNode;
use openmb::mb::Middlebox;
use openmb::middleboxes::Monitor;
use openmb::simnet::SimDuration;
use openmb::traffic::CloudTraceConfig;
use openmb::types::{HeaderFieldList, IpPrefix};

fn main() {
    use layout::*;

    // ---- scale up ----
    let subset = HeaderFieldList::from_src_subnet(IpPrefix::new("10.1.0.0".parse().unwrap(), 16));
    let up = ScaleUpApp::new(
        MB_A_ID,
        MB_B_ID,
        subset,
        SimDuration::from_millis(400),
        RouteSpec { pattern: subset, priority: 10, src: SRC, waypoints: vec![MB_B], dst: DST },
    );
    let mut setup =
        two_mb_scenario(Monitor::new(), Monitor::new(), Box::new(up), ScenarioParams::default());
    let trace =
        CloudTraceConfig { flows: 150, span: SimDuration::from_secs(1), ..Default::default() }
            .generate();
    let total = trace.len() as u64;
    trace.inject(&mut setup.sim, setup.src, setup.switch);
    setup.sim.run(100_000_000);
    assert!(setup.sim.is_idle());

    let a: &MbNode<Monitor> = setup.sim.node_as(setup.mb_a);
    let b: &MbNode<Monitor> = setup.sim.node_as(setup.mb_b);
    println!("== scale up ==");
    println!("records at existing instance: {}", a.logic.perflow_entries());
    println!("records at new instance:      {}", b.logic.perflow_entries());
    println!(
        "combined packet counters:     {} / {} injected",
        a.logic.stat().total_packets + b.logic.stat().total_packets,
        total
    );
    assert_eq!(a.logic.stat().total_packets + b.logic.stat().total_packets, total);

    // ---- scale down (fresh run: consolidate mb_a into mb_b) ----
    let down = ScaleDownApp::new(
        MB_A_ID,
        MB_B_ID,
        SimDuration::from_millis(600),
        RouteSpec {
            pattern: HeaderFieldList::any(),
            priority: 10,
            src: SRC,
            waypoints: vec![MB_B],
            dst: DST,
        },
    );
    let mut setup =
        two_mb_scenario(Monitor::new(), Monitor::new(), Box::new(down), ScenarioParams::default());
    let trace = CloudTraceConfig {
        flows: 120,
        span: SimDuration::from_secs(1),
        seed: 9,
        ..Default::default()
    }
    .generate();
    let total = trace.len() as u64;
    trace.inject(&mut setup.sim, setup.src, setup.switch);
    setup.sim.run(100_000_000);
    assert!(setup.sim.is_idle());

    let a: &MbNode<Monitor> = setup.sim.node_as(setup.mb_a);
    let b: &MbNode<Monitor> = setup.sim.node_as(setup.mb_b);
    println!("\n== scale down ==");
    println!("records left at deprecated:   {}", a.logic.perflow_entries());
    println!("records at survivor:          {}", b.logic.perflow_entries());
    println!("survivor's merged counters:   {} / {} injected", b.logic.stat().total_packets, total);
    assert_eq!(a.logic.perflow_entries(), 0);
    assert_eq!(b.logic.stat().total_packets, total);
    println!("\nOK: collective monitoring behavior unchanged across scaling —");
    println!("no over-reporting, no under-reporting (§6.2).");
}

//! The OpenMB protocol over real loopback TCP — the paper's deployment
//! shape (§7: controller listening for MB connections, JSON↔binary
//! messages per operation), with the same `ControllerCore` that drives
//! the simulator.
//!
//! Two monitor middleboxes are served by threads; the controller brokers
//! a `stats`, a configuration clone, a `moveInternal`, and a
//! `mergeInternal` between them, blocking on each completion.
//!
//! Run with: `cargo run --example tcp_protocol`

use openmb::core::controller::{Completion, ControllerConfig};
use openmb::core::tcp::{serve_middlebox, TcpController};
use openmb::mb::{Effects, Middlebox};
use openmb::middleboxes::Monitor;
use openmb::simnet::{SimDuration, SimTime};
use openmb::types::transport::TcpTransport;
use openmb::types::{FlowKey, HeaderFieldList, Packet};
use std::net::{Ipv4Addr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // --- two middlebox "processes", each behind a TCP listener ---
    let stop = Arc::new(AtomicBool::new(false));
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for i in 0..2u8 {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(listener.local_addr().unwrap());
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let (stream, peer) = listener.accept().unwrap();
            println!("[mb{i}] controller connected from {peer}");
            let transport = TcpTransport::new(stream).unwrap();
            let mut monitor = Monitor::new();
            if i == 0 {
                // Simulate a running MB: 50 observed flows.
                let mut fx = Effects::normal();
                for f in 1..=50u16 {
                    let key = FlowKey::tcp(
                        Ipv4Addr::new(10, 0, (f >> 8) as u8, f as u8),
                        30_000 + f,
                        Ipv4Addr::new(192, 168, 1, 1),
                        80,
                    );
                    monitor.process_packet(
                        SimTime(u64::from(f)),
                        &Packet::new(u64::from(f), key, vec![0u8; 100]),
                        &mut fx,
                    );
                }
            }
            serve_middlebox(&mut monitor, &transport, &stop).unwrap();
        }));
    }

    // --- the controller connects out and brokers operations ---
    let mut controller = TcpController::new(ControllerConfig {
        quiesce_after: SimDuration::from_millis(50),
        compress_transfers: false,
        buffer_events: true,
        ..ControllerConfig::default()
    });
    let src = controller.register_mb(Arc::new(TcpTransport::connect(addrs[0]).unwrap()));
    let dst = controller.register_mb(Arc::new(TcpTransport::connect(addrs[1]).unwrap()));
    controller.start();
    let t = Duration::from_secs(5);

    match controller.stats(src, HeaderFieldList::any(), t).unwrap() {
        Completion::Stats { stats, .. } => {
            println!(
                "[ctl] stats(src): {} per-flow chunks, {} bytes",
                stats.perflow_report_chunks, stats.perflow_report_bytes
            );
        }
        other => panic!("unexpected {other:?}"),
    }

    // Clone configuration (readConfig "*" → writeConfig each pair).
    if let Completion::Config { pairs, .. } = controller.read_config(src, "*", t).unwrap() {
        println!("[ctl] readConfig(src, \"*\"): {} keys", pairs.len());
        for (k, v) in pairs {
            controller.write_config(dst, &k.to_string(), v, t).unwrap();
        }
        println!("[ctl] configuration cloned to dst");
    }

    match controller.move_internal(src, dst, HeaderFieldList::any(), t).unwrap() {
        Completion::MoveComplete { chunks_moved, .. } => {
            println!("[ctl] moveInternal: {chunks_moved} chunks moved");
        }
        other => panic!("unexpected {other:?}"),
    }

    controller.merge_internal(src, dst, t).unwrap();
    println!("[ctl] mergeInternal: shared counters consolidated");

    std::thread::sleep(Duration::from_millis(200)); // quiescence deletes
    if let Completion::Stats { stats, .. } =
        controller.stats(dst, HeaderFieldList::any(), t).unwrap()
    {
        println!("[ctl] stats(dst): {} per-flow chunks", stats.perflow_report_chunks);
        assert_eq!(stats.perflow_report_chunks, 50);
    }

    controller.shutdown();
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    println!("\nOK: the full northbound/southbound protocol ran over loopback TCP.");
}
